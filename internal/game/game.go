// Package game defines the game catalog of the CloudFog simulator: the
// video quality ladder of Table 2 of the paper, per-game response-latency
// requirements and latency-tolerance degrees, and streaming frame
// parameters.
package game

import "fmt"

// FrameRate is the game-video frame rate. OnLive streams at 30 fps, and the
// paper sets the same rate in its experiments.
const FrameRate = 30

// QualityLevel indexes the bitrate ladder of Table 2, from 1 (lowest) to
// 5 (highest).
type QualityLevel int

// NumQualityLevels is the number of rungs in the Table 2 ladder.
const NumQualityLevels = 5

// Quality describes one rung of the Table 2 ladder.
type Quality struct {
	// Level is the quality level, 1..5.
	Level QualityLevel
	// Resolution is the video resolution ("width x height").
	Resolution string
	// BitrateKbps is the encoding bitrate at this level.
	BitrateKbps float64
	// LatencyRequirementMs is the response-latency requirement of a game
	// whose default quality is this level.
	LatencyRequirementMs float64
	// ToleranceDegree is the latency tolerance degree rho in [0, 1];
	// higher means more latency-tolerant.
	ToleranceDegree float64
}

// ladder is Table 2 of the paper.
var ladder = [NumQualityLevels]Quality{
	{Level: 1, Resolution: "288x216", BitrateKbps: 300, LatencyRequirementMs: 30, ToleranceDegree: 0.6},
	{Level: 2, Resolution: "384x216", BitrateKbps: 500, LatencyRequirementMs: 50, ToleranceDegree: 0.7},
	{Level: 3, Resolution: "512x384", BitrateKbps: 800, LatencyRequirementMs: 70, ToleranceDegree: 0.8},
	{Level: 4, Resolution: "720x486", BitrateKbps: 1200, LatencyRequirementMs: 90, ToleranceDegree: 0.9},
	{Level: 5, Resolution: "1280x720", BitrateKbps: 1800, LatencyRequirementMs: 110, ToleranceDegree: 1.0},
}

// Ladder returns the full Table 2 quality ladder, lowest level first.
func Ladder() []Quality {
	out := make([]Quality, NumQualityLevels)
	copy(out, ladder[:])
	return out
}

// QualityFor returns the Quality at the given level.
func QualityFor(level QualityLevel) (Quality, error) {
	if level < 1 || level > NumQualityLevels {
		//lint:ignore allocfree out-of-range guard: the adaptation controller clamps levels to the ladder, so this branch allocates only on programmer error
		return Quality{}, fmt.Errorf("quality level %d out of range [1,%d]", level, NumQualityLevels)
	}
	return ladder[level-1], nil
}

// MustQuality returns the Quality at the given level, panicking on an
// out-of-range level. Intended for compile-time-constant levels.
func MustQuality(level QualityLevel) Quality {
	q, err := QualityFor(level)
	if err != nil {
		panic(err)
	}
	return q
}

// Game is one MMOG title hosted on CloudFog. The paper defines five games,
// one per quality level / latency requirement of Table 2.
type Game struct {
	// ID identifies the game within the catalog.
	ID int
	// Name is a human-readable title.
	Name string
	// DefaultQuality is the game's default (maximum useful) video quality.
	DefaultQuality QualityLevel
	// LatencyRequirementMs is the game's response-latency requirement.
	LatencyRequirementMs float64
	// ToleranceDegree is the game's latency tolerance degree rho.
	ToleranceDegree float64
}

// Quality returns the game's default Quality rung.
func (g Game) Quality() Quality { return ladder[g.DefaultQuality-1] }

// Catalog returns the five games of the paper's experiments: "their quality
// levels and latency requirements are shown in Table 2". Names are
// illustrative genre labels matching the latency requirements (FPS-like
// games need the strictest latency; RPG-like the loosest, per the latency
// studies the paper cites).
func Catalog() []Game {
	names := [NumQualityLevels]string{
		"Arena Duel",      // 30 ms, twitch action
		"Battle Royale",   // 50 ms
		"Raid Frontier",   // 70 ms
		"Guild Realms",    // 90 ms
		"Emerald Kingdom", // 110 ms, slow-paced MMORPG
	}
	games := make([]Game, 0, NumQualityLevels)
	for i, q := range ladder {
		games = append(games, Game{
			ID:                   i + 1,
			Name:                 names[i],
			DefaultQuality:       q.Level,
			LatencyRequirementMs: q.LatencyRequirementMs,
			ToleranceDegree:      q.ToleranceDegree,
		})
	}
	return games
}

// SegmentDurationSec is the duration of one video segment. One-second
// segments at 30 fps are the unit the receiver-driven adaptation buffers.
const SegmentDurationSec = 1.0

// SegmentBits returns the size in bits of one segment encoded at the given
// quality level.
func SegmentBits(level QualityLevel) float64 {
	return ladder[level-1].BitrateKbps * 1000 * SegmentDurationSec
}
