package game

import (
	"testing"
)

func TestLadderMatchesTable2(t *testing.T) {
	ladder := Ladder()
	if len(ladder) != NumQualityLevels {
		t.Fatalf("ladder has %d rungs", len(ladder))
	}
	wantBitrates := []float64{300, 500, 800, 1200, 1800}
	wantLatency := []float64{30, 50, 70, 90, 110}
	wantTolerance := []float64{0.6, 0.7, 0.8, 0.9, 1.0}
	for i, q := range ladder {
		if q.Level != QualityLevel(i+1) {
			t.Errorf("rung %d has level %d", i, q.Level)
		}
		if q.BitrateKbps != wantBitrates[i] {
			t.Errorf("level %d bitrate %v, want %v", q.Level, q.BitrateKbps, wantBitrates[i])
		}
		if q.LatencyRequirementMs != wantLatency[i] {
			t.Errorf("level %d latency %v, want %v", q.Level, q.LatencyRequirementMs, wantLatency[i])
		}
		if q.ToleranceDegree != wantTolerance[i] {
			t.Errorf("level %d tolerance %v, want %v", q.Level, q.ToleranceDegree, wantTolerance[i])
		}
		if q.Resolution == "" {
			t.Errorf("level %d missing resolution", q.Level)
		}
	}
}

func TestLadderMonotone(t *testing.T) {
	ladder := Ladder()
	for i := 1; i < len(ladder); i++ {
		if ladder[i].BitrateKbps <= ladder[i-1].BitrateKbps {
			t.Error("bitrates not strictly increasing")
		}
		if ladder[i].LatencyRequirementMs <= ladder[i-1].LatencyRequirementMs {
			t.Error("latency requirements not strictly increasing")
		}
		if ladder[i].ToleranceDegree <= ladder[i-1].ToleranceDegree {
			t.Error("tolerance degrees not strictly increasing")
		}
	}
}

func TestLadderIsCopy(t *testing.T) {
	l := Ladder()
	l[0].BitrateKbps = 99999
	if Ladder()[0].BitrateKbps == 99999 {
		t.Error("Ladder exposes internal state")
	}
}

func TestQualityFor(t *testing.T) {
	q, err := QualityFor(3)
	if err != nil || q.Level != 3 {
		t.Errorf("QualityFor(3) = %+v, %v", q, err)
	}
	if _, err := QualityFor(0); err == nil {
		t.Error("QualityFor(0) accepted")
	}
	if _, err := QualityFor(6); err == nil {
		t.Error("QualityFor(6) accepted")
	}
}

func TestMustQualityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustQuality(0) did not panic")
		}
	}()
	MustQuality(0)
}

func TestCatalog(t *testing.T) {
	games := Catalog()
	if len(games) != NumQualityLevels {
		t.Fatalf("catalog has %d games", len(games))
	}
	seen := map[int]bool{}
	for i, g := range games {
		if g.ID != i+1 {
			t.Errorf("game %d has ID %d", i, g.ID)
		}
		if seen[g.ID] {
			t.Errorf("duplicate game ID %d", g.ID)
		}
		seen[g.ID] = true
		if g.Name == "" {
			t.Errorf("game %d unnamed", g.ID)
		}
		q := g.Quality()
		if q.Level != g.DefaultQuality {
			t.Errorf("game %d quality mismatch", g.ID)
		}
		if g.LatencyRequirementMs != q.LatencyRequirementMs {
			t.Errorf("game %d latency requirement %v != ladder %v",
				g.ID, g.LatencyRequirementMs, q.LatencyRequirementMs)
		}
		if g.ToleranceDegree != q.ToleranceDegree {
			t.Errorf("game %d tolerance mismatch", g.ID)
		}
	}
}

func TestSegmentBits(t *testing.T) {
	// One second at 300 kbps = 300,000 bits.
	if got := SegmentBits(1); got != 300*1000*SegmentDurationSec {
		t.Errorf("SegmentBits(1) = %v", got)
	}
	if got := SegmentBits(5); got != 1800*1000*SegmentDurationSec {
		t.Errorf("SegmentBits(5) = %v", got)
	}
}

func TestFrameRate(t *testing.T) {
	// OnLive's 30 fps is the paper's experimental setting.
	if FrameRate != 30 {
		t.Errorf("FrameRate = %d, want 30", FrameRate)
	}
}
