// Package geo models the two-dimensional geography underlying the CloudFog
// network: node coordinates on a continental plane, distances, and placement
// strategies for players, supernodes, and datacenters.
//
// The paper determines node positions from IP-derived coordinates and
// computes physical distance between supernode candidates and players. We
// reproduce that with an explicit continental plane (roughly the contiguous
// US: 4,500 km x 2,800 km) with population clustered around metropolitan
// centers, which gives the same qualitative property the paper relies on:
// players are dense around a limited set of hot spots while datacenters are
// few and far between.
package geo

import (
	"math"

	"cloudfog/internal/rng"
)

// Plane dimensions in kilometers, approximating the contiguous United
// States, the region the paper's coverage study (Choy et al.) measures.
const (
	PlaneWidthKm  = 4500.0
	PlaneHeightKm = 2800.0
)

// Point is a location on the continental plane, in kilometers.
type Point struct {
	X float64
	Y float64
}

// Distance returns the Euclidean distance between two points in kilometers.
func Distance(a, b Point) float64 {
	dx := a.X - b.X
	dy := a.Y - b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Clamp returns p with both coordinates clamped onto the plane.
func Clamp(p Point) Point {
	return Point{
		X: math.Max(0, math.Min(PlaneWidthKm, p.X)),
		Y: math.Max(0, math.Min(PlaneHeightKm, p.Y)),
	}
}

// Metro is a population center around which players cluster.
type Metro struct {
	Center Point
	// Weight is the relative share of population in this metro.
	Weight float64
	// SpreadKm is the standard deviation of the player scatter.
	SpreadKm float64
}

// DefaultMetros returns a set of metropolitan areas loosely patterned on the
// large US population centers. The exact cities do not matter; what matters
// is a multi-modal population density so that "nearby supernodes" exist for
// most players while a handful of datacenters cannot be near everyone.
func DefaultMetros() []Metro {
	return []Metro{
		{Center: Point{X: 4100, Y: 1900}, Weight: 0.20, SpreadKm: 150}, // northeast corridor
		{Center: Point{X: 3700, Y: 1250}, Weight: 0.12, SpreadKm: 140}, // southeast
		{Center: Point{X: 3000, Y: 1900}, Weight: 0.13, SpreadKm: 150}, // great lakes
		{Center: Point{X: 2500, Y: 1000}, Weight: 0.12, SpreadKm: 160}, // texas
		{Center: Point{X: 450, Y: 1100}, Weight: 0.15, SpreadKm: 150},  // southwest coast
		{Center: Point{X: 350, Y: 2200}, Weight: 0.09, SpreadKm: 130},  // northwest coast
		{Center: Point{X: 1600, Y: 1700}, Weight: 0.07, SpreadKm: 200}, // mountain
		{Center: Point{X: 2900, Y: 1450}, Weight: 0.12, SpreadKm: 220}, // midsouth
	}
}

// Placer draws locations from a metro-clustered population density.
type Placer struct {
	metros  []Metro
	sampler *rng.Weighted
}

// NewPlacer builds a Placer over the given metros. If metros is empty,
// DefaultMetros is used.
func NewPlacer(metros []Metro) *Placer {
	if len(metros) == 0 {
		metros = DefaultMetros()
	}
	values := make([]float64, len(metros))
	weights := make([]float64, len(metros))
	for i, m := range metros {
		values[i] = float64(i)
		weights[i] = m.Weight
	}
	return &Placer{metros: metros, sampler: rng.NewWeighted(values, weights)}
}

// PlacePlayer samples a player location: a metro chosen by weight, then
// Gaussian scatter around its center.
func (p *Placer) PlacePlayer(r *rng.Rand) Point {
	m := p.metros[int(p.sampler.Sample(r))]
	return Clamp(Point{
		X: r.Normal(m.Center.X, m.SpreadKm),
		Y: r.Normal(m.Center.Y, m.SpreadKm),
	})
}

// PlaceUniform samples a location uniformly over the plane. Used for the
// "randomly distributed servers" of the CDN baselines.
func (p *Placer) PlaceUniform(r *rng.Rand) Point {
	return Point{
		X: r.Uniform(0, PlaneWidthKm),
		Y: r.Uniform(0, PlaneHeightKm),
	}
}

// DatacenterSites returns up to n datacenter locations drawn from a fixed
// site list patterned on real cloud regions (few, spread out). If n exceeds
// the site list, the remainder are evenly spaced grid fill-ins, modeling the
// paper's "deploy more datacenters" sweep up to 25.
func DatacenterSites(n int) []Point {
	fixed := []Point{
		{X: 4000, Y: 1950}, // us-east (N. Virginia-ish)
		{X: 700, Y: 1500},  // us-west-1
		{X: 400, Y: 2250},  // us-west-2
		{X: 2900, Y: 1800}, // us-central
		{X: 2550, Y: 950},  // us-south
		{X: 3650, Y: 1200}, // us-southeast
		{X: 1600, Y: 1650}, // mountain
		{X: 3400, Y: 2100}, // great lakes
	}
	if n <= len(fixed) {
		return append([]Point(nil), fixed[:n]...)
	}
	sites := append([]Point(nil), fixed...)
	// Fill the remainder on a jitter-free grid so added datacenters always
	// improve worst-case proximity (the paper's diminishing-returns curve).
	need := n - len(fixed)
	cols := int(math.Ceil(math.Sqrt(float64(need) * PlaneWidthKm / PlaneHeightKm)))
	if cols < 1 {
		cols = 1
	}
	rows := int(math.Ceil(float64(need) / float64(cols)))
	for i := 0; len(sites) < n; i++ {
		row := i / cols
		col := i % cols
		if row >= rows {
			break
		}
		sites = append(sites, Point{
			X: (float64(col) + 0.5) * PlaneWidthKm / float64(cols),
			Y: (float64(row) + 0.5) * PlaneHeightKm / float64(rows),
		})
	}
	return sites[:n]
}

// Nearest returns the index of the point in candidates closest to p, and
// the distance to it. It returns (-1, +Inf) when candidates is empty.
func Nearest(p Point, candidates []Point) (int, float64) {
	best := -1
	bestD := math.Inf(1)
	for i, c := range candidates {
		if d := Distance(p, c); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}
