package geo

import (
	"math"
	"testing"
	"testing/quick"

	"cloudfog/internal/rng"
)

func TestDistance(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64
	}{
		{"same point", Point{1, 2}, Point{1, 2}, 0},
		{"horizontal", Point{0, 0}, Point{3, 0}, 3},
		{"vertical", Point{0, 0}, Point{0, 4}, 4},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Distance(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Distance = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		d1, d2 := Distance(a, b), Distance(b, a)
		return d1 == d2 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	p := Clamp(Point{-100, PlaneHeightKm + 500})
	if p.X != 0 || p.Y != PlaneHeightKm {
		t.Errorf("Clamp = %+v", p)
	}
	q := Clamp(Point{100, 200})
	if q.X != 100 || q.Y != 200 {
		t.Errorf("Clamp moved interior point: %+v", q)
	}
}

func TestDefaultMetrosWeightsSum(t *testing.T) {
	var sum float64
	for _, m := range DefaultMetros() {
		if m.Weight <= 0 || m.SpreadKm <= 0 {
			t.Errorf("invalid metro %+v", m)
		}
		sum += m.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("metro weights sum to %v, want 1", sum)
	}
}

func TestPlacerOnPlane(t *testing.T) {
	p := NewPlacer(nil)
	r := rng.New(1)
	for i := 0; i < 2000; i++ {
		pt := p.PlacePlayer(r)
		if pt.X < 0 || pt.X > PlaneWidthKm || pt.Y < 0 || pt.Y > PlaneHeightKm {
			t.Fatalf("player placed off plane: %+v", pt)
		}
		u := p.PlaceUniform(r)
		if u.X < 0 || u.X > PlaneWidthKm || u.Y < 0 || u.Y > PlaneHeightKm {
			t.Fatalf("uniform placed off plane: %+v", u)
		}
	}
}

func TestPlacerClusters(t *testing.T) {
	// Players must be denser near metro centers than uniform: the mean
	// distance to the nearest metro center should be well below uniform's.
	p := NewPlacer(nil)
	r := rng.New(2)
	centers := make([]Point, 0)
	for _, m := range DefaultMetros() {
		centers = append(centers, m.Center)
	}
	var sumPlayer, sumUniform float64
	const n = 3000
	for i := 0; i < n; i++ {
		_, d := Nearest(p.PlacePlayer(r), centers)
		sumPlayer += d
		_, du := Nearest(p.PlaceUniform(r), centers)
		sumUniform += du
	}
	if sumPlayer/n >= sumUniform/n {
		t.Errorf("player placement not clustered: mean %v vs uniform %v", sumPlayer/n, sumUniform/n)
	}
}

func TestDatacenterSites(t *testing.T) {
	for _, n := range []int{1, 3, 8, 9, 15, 25, 40} {
		sites := DatacenterSites(n)
		if len(sites) != n {
			t.Fatalf("DatacenterSites(%d) returned %d sites", n, len(sites))
		}
		for _, s := range sites {
			if s.X < 0 || s.X > PlaneWidthKm || s.Y < 0 || s.Y > PlaneHeightKm {
				t.Fatalf("site off plane: %+v", s)
			}
		}
	}
}

func TestDatacenterSitesPrefixStable(t *testing.T) {
	// Adding datacenters must not move existing ones (the Fig. 4 sweep
	// assumes monotone improvement).
	a := DatacenterSites(5)
	b := DatacenterSites(25)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("site %d moved: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDatacenterCoverageImproves(t *testing.T) {
	// More datacenters => the worst-case player distance shrinks (or stays).
	p := NewPlacer(nil)
	r := rng.New(3)
	players := make([]Point, 500)
	for i := range players {
		players[i] = p.PlacePlayer(r)
	}
	meanNearest := func(n int) float64 {
		sites := DatacenterSites(n)
		var sum float64
		for _, pl := range players {
			_, d := Nearest(pl, sites)
			sum += d
		}
		return sum / float64(len(players))
	}
	prev := meanNearest(1)
	for _, n := range []int{5, 10, 25} {
		cur := meanNearest(n)
		if cur > prev+1e-9 {
			t.Errorf("mean nearest distance rose from %v to %v at n=%d", prev, cur, n)
		}
		prev = cur
	}
}

func TestNearest(t *testing.T) {
	cands := []Point{{0, 0}, {10, 0}, {5, 5}}
	i, d := Nearest(Point{9, 1}, cands)
	if i != 1 {
		t.Errorf("Nearest index = %d", i)
	}
	if math.Abs(d-math.Sqrt(2)) > 1e-12 {
		t.Errorf("Nearest distance = %v", d)
	}
	i, d = Nearest(Point{1, 1}, nil)
	if i != -1 || !math.IsInf(d, 1) {
		t.Errorf("Nearest of empty = %d, %v", i, d)
	}
}
