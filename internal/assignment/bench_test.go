package assignment

import (
	"testing"

	"cloudfog/internal/rng"
	"cloudfog/internal/social"
)

// BenchmarkAssign measures the full server-assignment pipeline (greedy +
// swap refinement + polish) over a 5,000-player guild graph — the weekly
// reassignment cost of §3.4.
func BenchmarkAssign(b *testing.B) {
	g := social.Generate(social.GenerateConfig{N: 5000, Skew: 1.5}, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Assign(g, Config{Servers: 50}, rng.New(2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModularity measures one Γ evaluation, the inner loop of the
// swap refinement.
func BenchmarkModularity(b *testing.B) {
	g := social.Generate(social.GenerateConfig{N: 5000, Skew: 1.5}, rng.New(1))
	community := Random(5000, 50, rng.New(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		social.Modularity(g, community, 50)
	}
}
