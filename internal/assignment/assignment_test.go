package assignment

import (
	"testing"
	"testing/quick"

	"cloudfog/internal/rng"
	"cloudfog/internal/social"
)

func guildGraph(n int, r *rng.Rand) *social.Graph {
	return social.Generate(social.GenerateConfig{
		N: n, Skew: 1.5, GuildSizeMin: 20, GuildSizeMax: 30,
	}, r)
}

func TestAssignValidation(t *testing.T) {
	g := social.NewGraph(10)
	if _, err := Assign(g, Config{Servers: 0}, rng.New(1)); err == nil {
		t.Error("Servers=0 accepted")
	}
}

func TestAssignIsPartitionProperty(t *testing.T) {
	// Property: every player lands in exactly one community in [0, z).
	f := func(seed uint64, zRaw uint8) bool {
		r := rng.New(seed)
		n := 150
		g := guildGraph(n, r)
		z := int(zRaw%10) + 1
		res, err := Assign(g, Config{Servers: z}, r)
		if err != nil {
			return false
		}
		if len(res.Community) != n {
			return false
		}
		for _, c := range res.Community {
			if c < 0 || c >= z {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAssignBeatsRandom(t *testing.T) {
	r := rng.New(2)
	g := guildGraph(1000, r)
	res, err := Assign(g, Config{Servers: 40}, r)
	if err != nil {
		t.Fatal(err)
	}
	cross := CrossServerFraction(g, res.Community)
	randomCross := CrossServerFraction(g, Random(1000, 40, r))
	if cross >= randomCross {
		t.Fatalf("assignment (%v) no better than random (%v)", cross, randomCross)
	}
	if cross > 0.6 {
		t.Errorf("cross-server fraction %v too high for a guild graph", cross)
	}
	if res.Modularity <= 0 {
		t.Errorf("modularity %v not positive", res.Modularity)
	}
}

func TestRefinementAndPolishImprove(t *testing.T) {
	r := rng.New(3)
	g := guildGraph(800, r)
	full, err := Assign(g, Config{Servers: 30}, r)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Assign(g, Config{Servers: 30, SkipRefinement: true, PolishSweeps: -1}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if full.Modularity < greedy.Modularity {
		t.Errorf("refined Γ %v below greedy-only %v", full.Modularity, greedy.Modularity)
	}
	if full.Modularity < full.GreedyModularity {
		t.Errorf("final Γ %v below own greedy Γ %v", full.Modularity, full.GreedyModularity)
	}
}

func TestSwapRefinementNeverDecreasesGamma(t *testing.T) {
	// The Miss/rollback rule guarantees monotone Γ before polishing.
	r := rng.New(4)
	g := guildGraph(500, r)
	res, err := Assign(g, Config{Servers: 20, PolishSweeps: -1, H1: 200, H2: 50}, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Modularity < res.GreedyModularity-1e-12 {
		t.Errorf("swap refinement decreased Γ: %v -> %v", res.GreedyModularity, res.Modularity)
	}
	if res.Iterations == 0 {
		t.Error("no refinement iterations ran")
	}
	if res.Misses > res.Iterations {
		t.Error("more misses than iterations")
	}
}

func TestPolishRespectsSizeCap(t *testing.T) {
	r := rng.New(5)
	n, z := 600, 20
	g := guildGraph(n, r)
	res, err := Assign(g, Config{Servers: z, PolishSweeps: 5}, r)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int, z)
	for _, c := range res.Community {
		sizes[c]++
	}
	maxAllowed := 3*n/(2*z) + 1 // cap plus the pre-polish slack
	for c, s := range sizes {
		if s > maxAllowed+n/z { // generous: greedy may overfill before polish
			t.Errorf("community %d size %d far above cap %d", c, s, maxAllowed)
		}
	}
}

func TestAssignSingleServer(t *testing.T) {
	r := rng.New(6)
	g := guildGraph(100, r)
	res, err := Assign(g, Config{Servers: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Community {
		if c != 0 {
			t.Fatal("single-server assignment not all zero")
		}
	}
}

func TestAssignEmptyAndTinyGraphs(t *testing.T) {
	r := rng.New(7)
	if res, err := Assign(social.NewGraph(0), Config{Servers: 3}, r); err != nil || len(res.Community) != 0 {
		t.Errorf("empty graph: %v %v", res, err)
	}
	if res, err := Assign(social.NewGraph(1), Config{Servers: 3}, r); err != nil || len(res.Community) != 1 {
		t.Errorf("one-node graph: %v %v", res, err)
	}
	// More servers than players: still a valid partition.
	res, err := Assign(social.NewGraph(2), Config{Servers: 10}, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Community {
		if c < 0 || c >= 10 {
			t.Errorf("invalid community %d", c)
		}
	}
}

func TestRandomPartition(t *testing.T) {
	r := rng.New(8)
	community := Random(500, 7, r)
	if len(community) != 500 {
		t.Fatal("wrong length")
	}
	counts := make([]int, 7)
	for _, c := range community {
		if c < 0 || c >= 7 {
			t.Fatalf("out of range: %d", c)
		}
		counts[c]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Errorf("community %d empty (unlikely for uniform)", c)
		}
	}
}

func TestCrossServerFraction(t *testing.T) {
	g := social.NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(0, 2)
	// 0,1 together; 2,3 together: one of three edges crosses.
	got := CrossServerFraction(g, []int{0, 0, 1, 1})
	if got != 1.0/3 {
		t.Errorf("CrossServerFraction = %v, want 1/3", got)
	}
	if CrossServerFraction(social.NewGraph(3), []int{0, 1, 2}) != 0 {
		t.Error("edgeless graph fraction != 0")
	}
}

func TestConfigDefaults(t *testing.T) {
	c, err := Config{Servers: 2}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if c.H1 != 100 || c.H2 != 10 || c.PolishSweeps != 3 {
		t.Errorf("defaults: %+v", c)
	}
	c, _ = Config{Servers: 2, H1: 5, H2: 50}.withDefaults()
	if c.H2 > c.H1 {
		t.Error("H2 not clamped to H1")
	}
}

func TestAssignDeterministic(t *testing.T) {
	g := guildGraph(400, rng.New(10))
	a, _ := Assign(g, Config{Servers: 16}, rng.New(11))
	b, _ := Assign(g, Config{Servers: 16}, rng.New(11))
	for i := range a.Community {
		if a.Community[i] != b.Community[i] {
			t.Fatal("assignment not deterministic under equal seeds")
		}
	}
}
