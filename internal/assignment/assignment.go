// Package assignment implements the social-network-based server assignment
// strategy of §3.4 of the CloudFog paper.
//
// Players that interact in-game force their servers to exchange game state,
// adding server-communication latency to the response path. The strategy
// partitions players into z communities (one per server in a datacenter) so
// that friends — who tend to play together — land on the same server. The
// algorithm is the paper's: greedy friend-ball seeding (steps 1–4) followed
// by randomized swap refinement guided by modularity Γ (steps 5–6), stopped
// after h1 iterations or h2 consecutive misses.
package assignment

import (
	"fmt"

	"cloudfog/internal/rng"
	"cloudfog/internal/social"
)

// Config parameterizes the assignment algorithm.
type Config struct {
	// Servers is z, the number of servers (communities). Must be >= 1.
	Servers int
	// H1 is the maximum number of swap-refinement iterations. Defaults to
	// the paper's 100.
	H1 int
	// H2 is the consecutive-miss stop threshold (h2 < h1). Defaults to
	// the paper's 10.
	H2 int
	// SkipRefinement disables the swap-refinement phase (the greedy-only
	// ablation).
	SkipRefinement bool
	// PolishSweeps is the number of size-capped label-propagation sweeps
	// run after the paper's swap refinement: each sweep lets every player
	// follow its friend-majority community if that community has room.
	// This is an extension over the paper's algorithm (see DESIGN.md §6);
	// 0 uses the default of 3, negative disables polishing.
	PolishSweeps int
}

func (c Config) withDefaults() (Config, error) {
	if c.Servers < 1 {
		return c, fmt.Errorf("assignment: Servers must be >= 1, got %d", c.Servers)
	}
	if c.H1 <= 0 {
		c.H1 = 100
	}
	if c.H2 <= 0 {
		c.H2 = 10
	}
	if c.H2 > c.H1 {
		c.H2 = c.H1
	}
	if c.PolishSweeps == 0 {
		c.PolishSweeps = 3
	}
	return c, nil
}

// Result is the outcome of an assignment run.
type Result struct {
	// Community maps each player to its server index in [0, Servers).
	Community []int
	// Modularity is the final Γ of the partition.
	Modularity float64
	// GreedyModularity is Γ after the greedy phase, before refinement.
	GreedyModularity float64
	// Iterations is how many swap iterations ran.
	Iterations int
	// Misses is how many swap iterations were rolled back.
	Misses int
}

// Assign partitions the players of g into cfg.Servers communities using the
// paper's algorithm and returns the final assignment.
func Assign(g *social.Graph, cfg Config, r *rng.Rand) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n := g.N()
	community := greedySeed(g, cfg.Servers, r)
	res := &Result{Community: community}
	res.GreedyModularity = social.Modularity(g, community, cfg.Servers)
	res.Modularity = res.GreedyModularity
	if cfg.SkipRefinement || cfg.Servers < 2 || n < 2 {
		return res, nil
	}

	// Step 5–6: randomized swap refinement.
	gammaPre := res.Modularity
	consecutiveMisses := 0
	for it := 0; it < cfg.H1 && consecutiveMisses < cfg.H2; it++ {
		res.Iterations++
		ca := r.Intn(cfg.Servers)
		cb := r.Intn(cfg.Servers)
		if ca == cb {
			cb = (cb + 1) % cfg.Servers
		}
		ni := randMember(community, ca, r)
		nj := randMember(community, cb, r)
		if ni < 0 || nj < 0 {
			consecutiveMisses++
			res.Misses++
			continue
		}
		// Swap the communities of n_i + F(i) and n_j + F(j).
		moved := swapBalls(g, community, ni, ca, nj, cb)
		gammaCur := social.Modularity(g, community, cfg.Servers)
		if gammaCur > gammaPre {
			gammaPre = gammaCur
			consecutiveMisses = 0
		} else {
			// Miss: roll back.
			for player, prev := range moved {
				community[player] = prev
			}
			consecutiveMisses++
			res.Misses++
		}
	}
	res.Modularity = gammaPre
	if cfg.PolishSweeps > 0 {
		polish(g, community, cfg.Servers, cfg.PolishSweeps)
		res.Modularity = social.Modularity(g, community, cfg.Servers)
	}
	return res, nil
}

// polish runs size-capped label propagation: each player follows its
// friend-majority community when that community is below 150% of the
// average size. The cap prevents the propagation from collapsing everyone
// onto a handful of servers (servers have finite capacity).
func polish(g *social.Graph, community []int, z, sweeps int) {
	n := g.N()
	if n == 0 || z < 2 {
		return
	}
	maxSize := 3 * n / (2 * z)
	if maxSize < 2 {
		maxSize = 2
	}
	sizes := make([]int, z)
	for _, c := range community {
		if c >= 0 && c < z {
			sizes[c]++
		}
	}
	for s := 0; s < sweeps; s++ {
		moved := 0
		for i := 0; i < n; i++ {
			counts := make(map[int]int)
			for _, f := range g.Friends(i) {
				counts[community[f]]++
			}
			best, bestN := community[i], counts[community[i]]
			for c, cnt := range counts {
				if c == community[i] || sizes[c] >= maxSize {
					continue
				}
				if cnt > bestN || (cnt == bestN && c < best) {
					best, bestN = c, cnt
				}
			}
			if best != community[i] {
				sizes[community[i]]--
				sizes[best]++
				community[i] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// greedySeed implements steps 1–4: repeatedly seed a community with a random
// unassigned player and grow it by pulling in members' friends until it
// reaches |V|/z, then move to the next community. Any stragglers join the
// smallest community.
func greedySeed(g *social.Graph, z int, r *rng.Rand) []int {
	n := g.N()
	community := make([]int, n)
	for i := range community {
		community[i] = -1
	}
	if n == 0 {
		return community
	}
	target := n / z
	if target < 1 {
		target = 1
	}
	unassigned := r.Perm(n)
	next := 0
	takeNext := func() int {
		for next < len(unassigned) {
			p := unassigned[next]
			next++
			if community[p] < 0 {
				return p
			}
		}
		return -1
	}
	for c := 0; c < z; c++ {
		seed := takeNext()
		if seed < 0 {
			break
		}
		members := []int{seed}
		community[seed] = c
		// Pull in the seed's friends, then friends-of-members, until the
		// community reaches the target size.
		frontier := 0
		for len(members) < target {
			if frontier >= len(members) {
				// Ball exhausted before reaching target: seed again from
				// the unassigned pool.
				p := takeNext()
				if p < 0 {
					break
				}
				community[p] = c
				members = append(members, p)
				continue
			}
			p := members[frontier]
			frontier++
			for _, f := range g.Friends(p) {
				if community[f] < 0 {
					community[f] = c
					members = append(members, f)
					if len(members) >= target {
						break
					}
				}
			}
		}
	}
	// Stragglers (left over after the last community filled): each joins
	// the community holding most of its friends, falling back to
	// round-robin for the friendless.
	c := 0
	for i := 0; i < n; i++ {
		if community[i] >= 0 {
			continue
		}
		counts := make(map[int]int)
		for _, f := range g.Friends(i) {
			if community[f] >= 0 {
				counts[community[f]]++
			}
		}
		best, bestN := -1, 0
		for comm, cnt := range counts {
			if cnt > bestN || (cnt == bestN && comm < best) {
				best, bestN = comm, cnt
			}
		}
		if best >= 0 {
			community[i] = best
		} else {
			community[i] = c % z
			c++
		}
	}
	return community
}

// randMember returns a uniformly random player currently in community c, or
// -1 if the community is empty. Linear scan with reservoir sampling keeps
// it allocation-free.
func randMember(community []int, c int, r *rng.Rand) int {
	chosen := -1
	count := 0
	for p, cp := range community {
		if cp != c {
			continue
		}
		count++
		if r.Intn(count) == 0 {
			chosen = p
		}
	}
	return chosen
}

// swapBalls moves n_i and its friends to cb and n_j and its friends to ca,
// returning the previous community of every moved player for rollback.
func swapBalls(g *social.Graph, community []int, ni, ca, nj, cb int) map[int]int {
	moved := make(map[int]int)
	move := func(p, to int) {
		if _, ok := moved[p]; !ok {
			moved[p] = community[p]
		}
		community[p] = to
	}
	move(ni, cb)
	for _, f := range g.Friends(ni) {
		move(f, cb)
	}
	move(nj, ca)
	for _, f := range g.Friends(nj) {
		move(f, ca)
	}
	return moved
}

// Random assigns each player to a uniformly random server; this is the
// "w/o" baseline of Fig. 12 ("the users are randomly assigned to servers in
// a datacenter").
func Random(n, servers int, r *rng.Rand) []int {
	community := make([]int, n)
	for i := range community {
		community[i] = r.Intn(servers)
	}
	return community
}

// CrossServerFraction returns the fraction of friendship edges whose
// endpoints sit on different servers — the interactions that trigger
// server-to-server communication and hence the Fig. 12 server latency.
func CrossServerFraction(g *social.Graph, community []int) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	var cross int
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Friends(u) {
			if u < v && community[u] != community[v] {
				cross++
			}
		}
	}
	return float64(cross) / float64(g.NumEdges())
}
