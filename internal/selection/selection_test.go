package selection

import (
	"math"
	"testing"

	"cloudfog/internal/reputation"
	"cloudfog/internal/rng"
)

func candN(n int) []Candidate {
	out := make([]Candidate, n)
	for i := range out {
		out[i] = Candidate{ID: 100 + i, Capacity: 4, RTTMs: float64(10 + i)}
	}
	return out
}

func TestPolicyStringAndParse(t *testing.T) {
	for _, p := range []Policy{PolicyRandom, PolicyReputation, PolicyGlobalReputation} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("alphabetical"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestAvailable(t *testing.T) {
	if (Candidate{Load: 4, Capacity: 4}).Available() {
		t.Error("full candidate reported available")
	}
	if !(Candidate{Load: 3, Capacity: 4}).Available() {
		t.Error("free candidate reported unavailable")
	}
	// Unknown capacity is treated as available — the probe decides.
	if !(Candidate{Load: 99, Capacity: 0}).Available() {
		t.Error("unknown-capacity candidate reported unavailable")
	}
}

func TestRankReputationScorerWins(t *testing.T) {
	book := reputation.NewBook(0.9)
	book.Rate(105, 0.95, 0)
	cands := candN(8)
	PolicyRanker{Policy: PolicyReputation, Scorer: book}.Rank(cands, 0, rng.New(1))
	if cands[0].ID != 105 {
		t.Errorf("rated candidate not ranked first: %+v", cands[0])
	}
}

func TestRankShufflesTies(t *testing.T) {
	// All scores equal: the first-ranked candidate must vary with the
	// stream, or every player herds onto the same supernode. This is the
	// regression surface of the global-reputation tie-break fix.
	for _, policy := range []Policy{PolicyRandom, PolicyReputation, PolicyGlobalReputation} {
		seen := map[int]bool{}
		for seed := uint64(0); seed < 32; seed++ {
			cands := candN(8)
			PolicyRanker{Policy: policy}.Rank(cands, 0, rng.New(seed))
			seen[cands[0].ID] = true
		}
		if len(seen) < 3 {
			t.Errorf("policy %v: ties not shuffled, first candidates %v", policy, seen)
		}
	}
}

func TestRankFullCandidatesSortLast(t *testing.T) {
	book := reputation.NewBook(0.9)
	book.Rate(100, 1.0, 0) // best score, but full
	cands := candN(4)
	cands[0].Load = cands[0].Capacity
	PolicyRanker{Policy: PolicyReputation, Scorer: book}.Rank(cands, 0, rng.New(7))
	if cands[len(cands)-1].ID != 100 {
		t.Errorf("full candidate not ranked last: %+v", cands)
	}
}

func TestRankEmbeddedScoresWithoutScorer(t *testing.T) {
	cands := candN(5)
	cands[3].Score = 0.9 // e.g. shipped by the cloud in CandidateInfo
	PolicyRanker{Policy: PolicyReputation}.Rank(cands, 0, rng.New(3))
	if cands[0].ID != 103 {
		t.Errorf("embedded score ignored: %+v", cands[0])
	}
}

func TestFilterByDelay(t *testing.T) {
	cands := candN(5) // RTTs 10..14
	cands[4].RTTMs = -1
	got := FilterByDelay(cands, 6) // keeps RTT <= 12 and the unmeasured one
	if len(got) != 4 {
		t.Fatalf("filtered to %d candidates: %+v", len(got), got)
	}
	for _, c := range got {
		if c.RTTMs > 12 {
			t.Errorf("candidate above the delay bound survived: %+v", c)
		}
	}
}

func TestPipelineProbesSequentially(t *testing.T) {
	cands := candN(6)
	probed := []int{}
	out := Pipeline{Source: List(cands), Ranker: PolicyRanker{Policy: PolicyRandom}}.
		Run(100, 0, rng.New(9), func(c Candidate) bool {
			probed = append(probed, c.ID)
			return len(probed) == 3 // first two refuse
		})
	if !out.OK || out.Probed != 3 || len(probed) != 3 || out.Chosen.ID != probed[2] {
		t.Errorf("sequential probing broken: %+v probed=%v", out, probed)
	}
	if math.Abs(out.PingMs-15) > 1e-12 { // slowest fetched RTT dominates
		t.Errorf("PingMs = %v, want 15", out.PingMs)
	}
}

func TestPipelineAllRefuse(t *testing.T) {
	out := Pipeline{Source: List(candN(3)), Ranker: PolicyRanker{Policy: PolicyRandom}}.
		Run(100, 0, rng.New(2), func(Candidate) bool { return false })
	if out.OK || out.Probed != 3 {
		t.Errorf("refusal run: %+v", out)
	}
}

func TestPipelineDelayFilterEmpty(t *testing.T) {
	out := Pipeline{Source: List(candN(3)), Ranker: PolicyRanker{Policy: PolicyRandom}}.
		Run(1, 0, rng.New(2), nil) // every RTT/2 > 1ms
	if out.OK || out.Candidates != 0 {
		t.Errorf("delay filter leaked: %+v", out)
	}
	if out.PingMs == 0 {
		t.Error("parallel ping cost not accounted for unqualified candidates")
	}
}

func BenchmarkRank(b *testing.B) {
	book := reputation.NewBook(0.9)
	for i := 0; i < 16; i++ {
		book.Rate(100+i, 0.5+float64(i)/64, 0)
	}
	r := rng.New(42)
	base := candN(64)
	cands := make([]Candidate, len(base))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(cands, base)
		PolicyRanker{Policy: PolicyReputation, Scorer: book}.Rank(cands, 0, r)
	}
}
