// Package selection implements the supernode-selection pipeline of §3.2 of
// the CloudFog paper as a shared control plane: candidate filtering by
// transmission delay and capacity, policy ranking (random / per-player
// reputation / global reputation), and sequential capacity probing.
//
// Two consumers delegate to it. The simulator's player-side procedure
// (internal/fog.Selector) runs the full Pipeline against the cloud-side
// registry with modeled RTTs; the networked prototype (internal/fognet)
// uses the same Ranker on both ends of the wire — the cloud ranks the
// failover ladder it pushes to players by its live QoE book, and players
// re-rank it with their measured RTTs before probing. Neither side carries
// its own ranking logic.
package selection

import (
	"fmt"
	"sort"

	"cloudfog/internal/rng"
)

// Candidate is one supernode as seen by the selection pipeline, whichever
// side of the wire it lives on.
type Candidate struct {
	// ID identifies the supernode (simulator endpoint ID, or the cloud's
	// stable per-address ID in the prototype).
	ID int
	// Addr is the supernode's streaming address (prototype only).
	Addr string
	// Load is the current number of attached players.
	Load int
	// Capacity is the advertised max concurrent players; 0 means unknown
	// (the candidate is assumed available).
	Capacity int
	// RTTMs is the measured or modeled round trip to the candidate;
	// negative means unmeasured.
	RTTMs float64
	// Score is the candidate's reputation score. A Ranker with a Scorer
	// overwrites it; otherwise the embedded value ranks.
	Score float64
}

// Available reports whether the candidate advertises a free player slot.
func (c Candidate) Available() bool {
	return c.Capacity <= 0 || c.Load < c.Capacity
}

// Policy selects the ranking rule for delay-qualified candidates.
type Policy int

const (
	// PolicyRandom picks among qualified candidates uniformly (CloudFog/B,
	// the Fig. 10 baseline).
	PolicyRandom Policy = iota + 1
	// PolicyReputation ranks by the player's own reputation book — the
	// paper's sybil-resistant scheme (Eq. 7).
	PolicyReputation
	// PolicyGlobalReputation ranks by a shared global reputation book, the
	// sybil-vulnerable strawman kept as an ablation.
	PolicyGlobalReputation
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyRandom:
		return "random"
	case PolicyReputation:
		return "reputation"
	case PolicyGlobalReputation:
		return "global"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy maps a flag value to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "random":
		return PolicyRandom, nil
	case "reputation":
		return PolicyReputation, nil
	case "global":
		return PolicyGlobalReputation, nil
	default:
		return 0, fmt.Errorf("selection: unknown policy %q (want random, reputation, or global)", s)
	}
}

// Scorer scores a supernode's reputation as of a given day.
// *reputation.Book and *reputation.GlobalBook satisfy it.
type Scorer interface {
	Score(supernodeID, today int) float64
}

// Ranker orders candidates in probing preference.
type Ranker interface {
	// Rank reorders cands in place, best candidate first, using r for the
	// tie-break shuffle.
	Rank(cands []Candidate, today int, r *rng.Rand)
}

// PolicyRanker ranks by one of the §3.2 policies. With a Scorer, candidate
// scores are refreshed from it before sorting; without one the embedded
// Candidate.Score values rank (the prototype's player side, which ranks by
// the scores the cloud shipped).
type PolicyRanker struct {
	Policy Policy
	Scorer Scorer
}

// Rank implements Ranker. Every policy shuffles first so that candidates
// with equal keys — in particular score-0 unknowns — are probed in random
// order: a deterministic tie-break would herd every player onto the same
// supernode. The subsequent sort is stable, preserving the shuffle among
// ties. Candidates without a free slot always sort last: probing them costs
// one RTT for a guaranteed refusal.
func (pr PolicyRanker) Rank(cands []Candidate, today int, r *rng.Rand) {
	if pr.Scorer != nil {
		for i := range cands {
			cands[i].Score = pr.Scorer.Score(cands[i].ID, today)
		}
	}
	if r != nil {
		r.Shuffle(len(cands), func(i, j int) {
			cands[i], cands[j] = cands[j], cands[i]
		})
	}
	byScore := pr.Policy == PolicyReputation || pr.Policy == PolicyGlobalReputation
	sort.SliceStable(cands, func(i, j int) bool {
		ai, aj := cands[i].Available(), cands[j].Available()
		if ai != aj {
			return ai
		}
		if byScore {
			return cands[i].Score > cands[j].Score
		}
		return false // PolicyRandom: shuffle order decides
	})
}

// FilterByDelay keeps the candidates whose one-way transmission delay
// RTT/2 is within maxOneWayMs — the L_max filter of §3.2.1. Unmeasured
// candidates (negative RTT) pass. The input slice is not modified.
func FilterByDelay(cands []Candidate, maxOneWayMs float64) []Candidate {
	out := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		if c.RTTMs < 0 || c.RTTMs/2 <= maxOneWayMs {
			out = append(out, c)
		}
	}
	return out
}

// CandidateSource supplies the candidate list a selection runs over — the
// cloud's answer to a player's request in §3.2.1.
type CandidateSource interface {
	Candidates() []Candidate
}

// List is a fixed CandidateSource.
type List []Candidate

// Candidates implements CandidateSource.
func (l List) Candidates() []Candidate { return l }

// ProbeFunc asks one candidate whether it accepts the player (one RTT of
// sequential probing in §3.2.2); it reports acceptance.
type ProbeFunc func(c Candidate) bool

// Outcome is the result of one selection run, with the counters the
// latency decomposition of Fig. 9 needs.
type Outcome struct {
	// Chosen is the accepted candidate; meaningful only when OK.
	Chosen Candidate
	// OK reports whether any candidate accepted.
	OK bool
	// Candidates is how many candidates passed the delay filter.
	Candidates int
	// Probed is how many candidates were asked before one accepted.
	Probed int
	// PingMs is the parallel delay-test time: the slowest RTT among all
	// fetched candidates (unmeasured ones cost nothing).
	PingMs float64
}

// Pipeline is the full §3.2 procedure: fetch candidates, filter by delay,
// rank by policy, probe sequentially.
type Pipeline struct {
	Source CandidateSource
	Ranker Ranker
}

// Run executes the pipeline. Candidates above the one-way delay bound are
// dropped (a non-positive bound disables the filter); the rest are ranked
// and probed in order until probe accepts one. A nil probe accepts the
// first-ranked candidate.
func (p Pipeline) Run(maxOneWayMs float64, today int, r *rng.Rand, probe ProbeFunc) Outcome {
	out := Outcome{}
	fetched := p.Source.Candidates()
	qualified := make([]Candidate, 0, len(fetched))
	for _, c := range fetched {
		if c.RTTMs > out.PingMs {
			out.PingMs = c.RTTMs // pings run in parallel; slowest dominates
		}
		if maxOneWayMs <= 0 || c.RTTMs < 0 || c.RTTMs/2 <= maxOneWayMs {
			qualified = append(qualified, c)
		}
	}
	out.Candidates = len(qualified)
	if len(qualified) == 0 {
		return out
	}
	p.Ranker.Rank(qualified, today, r)
	for _, c := range qualified {
		out.Probed++
		if probe == nil || probe(c) {
			out.Chosen = c
			out.OK = true
			return out
		}
	}
	return out
}
