package faultnet

import (
	"net/netip"
	"testing"
	"time"

	"cloudfog/internal/transport"
)

// drain reads every queued datagram's first byte until the pipe is empty.
func drain(t *testing.T, dc transport.DatagramConn) []byte {
	t.Helper()
	var got []byte
	buf := make([]byte, 64)
	for {
		dc.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
		n, _, err := dc.ReadFromUDPAddrPort(buf)
		if err != nil {
			return got
		}
		if n > 0 {
			got = append(got, buf[0])
		}
	}
}

func TestPacketConnDropRateDeterministic(t *testing.T) {
	run := func() (delivered []byte, stats Stats) {
		in := NewInjector(Profile{Seed: 42, DatagramDropRate: 0.3})
		a, b := transport.NewDatagramPipe(2048)
		defer a.Close()
		defer b.Close()
		pc := in.WrapPacketConn(a)
		for i := 0; i < 1000; i++ {
			pc.SetWriteDeadline(time.Now().Add(time.Second))
			if _, err := pc.WriteToUDPAddrPort([]byte{byte(i)}, netip.AddrPort{}); err != nil {
				t.Fatal(err)
			}
		}
		return drain(t, b), in.Stats()
	}
	got1, stats := run()
	if stats.Datagrams != 1000 {
		t.Errorf("datagrams = %d", stats.Datagrams)
	}
	// ~30% dropped, with deterministic draws.
	if stats.DroppedDatagrams < 200 || stats.DroppedDatagrams > 400 {
		t.Errorf("dropped = %d, want ~300", stats.DroppedDatagrams)
	}
	if int64(len(got1))+stats.DroppedDatagrams != 1000 {
		t.Errorf("delivered %d + dropped %d != 1000", len(got1), stats.DroppedDatagrams)
	}
	got2, stats2 := run()
	if string(got1) != string(got2) || stats != stats2 {
		t.Error("identical seeds must replay identical datagram fates")
	}
}

func TestPacketConnReorderSwapsPairs(t *testing.T) {
	in := NewInjector(Profile{Seed: 7, DatagramReorderRate: 0.25})
	a, b := transport.NewDatagramPipe(2048)
	defer a.Close()
	defer b.Close()
	pc := in.WrapPacketConn(a)
	const n = 250 // byte sequence must not wrap: the swap count below compares values
	for i := 0; i < n; i++ {
		pc.SetWriteDeadline(time.Now().Add(time.Second))
		pc.WriteToUDPAddrPort([]byte{byte(i)}, netip.AddrPort{})
	}
	got := drain(t, b)
	stats := in.Stats()
	if stats.ReorderedDatagrams == 0 {
		t.Fatal("no datagrams reordered at 25% rate")
	}
	// Nothing lost (one may be held at the end), and the out-of-order
	// count observed by the receiver matches the injector's accounting.
	if len(got) < n-1 {
		t.Errorf("delivered %d of %d", len(got), n)
	}
	swaps := 0
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			swaps++
		}
	}
	if int64(swaps) != stats.ReorderedDatagrams {
		t.Errorf("observed %d swaps, injector counted %d", swaps, stats.ReorderedDatagrams)
	}
}

func TestPacketConnDuplicates(t *testing.T) {
	in := NewInjector(Profile{Seed: 3, DatagramDupRate: 0.5})
	a, b := transport.NewDatagramPipe(2048)
	defer a.Close()
	defer b.Close()
	pc := in.WrapPacketConn(a)
	const n = 200
	for i := 0; i < n; i++ {
		pc.SetWriteDeadline(time.Now().Add(time.Second))
		pc.WriteToUDPAddrPort([]byte{byte(i)}, netip.AddrPort{})
	}
	got := drain(t, b)
	stats := in.Stats()
	if stats.DupDatagrams == 0 {
		t.Fatal("no duplicates at 50% rate")
	}
	if int64(len(got)) != int64(n)+stats.DupDatagrams {
		t.Errorf("delivered %d, want %d originals + %d dups", len(got), n, stats.DupDatagrams)
	}
}

func TestPacketConnAddrBlackholeBothDirections(t *testing.T) {
	in := NewInjector(Profile{Seed: 1})
	a, b := transport.NewDatagramPipe(64)
	defer a.Close()
	defer b.Close()
	pc := in.WrapPacketConn(a)

	dead := netip.MustParseAddrPort("10.9.9.9:999")
	in.SetAddrMode(dead.String(), Blackhole)

	// Write direction: datagrams to the blackholed address are eaten.
	pc.SetWriteDeadline(time.Now().Add(time.Second))
	pc.WriteToUDPAddrPort([]byte{1}, dead)
	if got := drain(t, b); len(got) != 0 {
		t.Errorf("blackholed write delivered: %v", got)
	}

	// Read direction: datagrams from a blackholed source are eaten. The
	// pipe's peer address is 127.0.0.1:2.
	in.SetAddrMode("127.0.0.1:2", Blackhole)
	b.SetWriteDeadline(time.Now().Add(time.Second))
	b.WriteToUDPAddrPort([]byte{2}, netip.AddrPort{})
	buf := make([]byte, 8)
	pc.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, _, err := pc.ReadFromUDPAddrPort(buf); err == nil {
		t.Error("read from blackholed source delivered")
	}
	if s := in.Stats(); s.DroppedDatagrams != 2 {
		t.Errorf("dropped = %d, want 2", s.DroppedDatagrams)
	}

	// Healing restores delivery.
	in.SetAddrMode("127.0.0.1:2", Healthy)
	b.SetWriteDeadline(time.Now().Add(time.Second))
	b.WriteToUDPAddrPort([]byte{3}, netip.AddrPort{})
	pc.SetReadDeadline(time.Now().Add(time.Second))
	n, _, err := pc.ReadFromUDPAddrPort(buf)
	if err != nil || n != 1 || buf[0] != 3 {
		t.Errorf("healed read: n=%d err=%v", n, err)
	}
}

func TestPacketConnCloseDropsHeld(t *testing.T) {
	in := NewInjector(Profile{Seed: 9, DatagramReorderRate: 1})
	a, b := transport.NewDatagramPipe(64)
	defer b.Close()
	pc := in.WrapPacketConn(a)
	pc.SetWriteDeadline(time.Now().Add(time.Second))
	pc.WriteToUDPAddrPort([]byte{1}, netip.AddrPort{}) // held for reordering
	pc.Close()
	if got := drain(t, b); len(got) != 0 {
		t.Errorf("held datagram leaked on close: %v", got)
	}
	if s := in.Stats(); s.DroppedDatagrams != 1 {
		t.Errorf("dropped = %d, want 1", s.DroppedDatagrams)
	}
}
