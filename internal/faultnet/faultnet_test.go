package faultnet

import (
	"bytes"
	"net"
	"testing"
	"time"

	"cloudfog/internal/protocol"
)

// pipe returns two ends of a real TCP connection on loopback, with the
// server end wrapped by the injector.
func pipe(t *testing.T, in *Injector) (wrapped *Conn, peer net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, aerr := ln.Accept()
		if aerr != nil {
			close(done)
			return
		}
		done <- c
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server, ok := <-done
	if !ok {
		t.Fatal("accept failed")
	}
	w := in.WrapConn(server)
	t.Cleanup(func() { w.Close(); client.Close() })
	return w, client
}

func TestHealthyPassThrough(t *testing.T) {
	in := NewInjector(Profile{Seed: 1})
	w, peer := pipe(t, in)
	msg := []byte("hello fog")
	if _, err := w.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := peer.Read(buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("got %q want %q", buf, msg)
	}
	if s := in.Stats(); s.Writes != 1 || s.Conns != 1 {
		t.Errorf("stats: %+v", s)
	}
}

func TestAddedLatencyDelaysWrites(t *testing.T) {
	in := NewInjector(Profile{Seed: 2, AddedLatency: 30 * time.Millisecond})
	w, peer := pipe(t, in)
	start := time.Now()
	if _, err := w.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("write returned after %v, want >= ~30ms", elapsed)
	}
	buf := make([]byte, 1)
	if _, err := peer.Read(buf); err != nil {
		t.Fatal(err)
	}
	if s := in.Stats(); s.DelayedMs < 25 {
		t.Errorf("DelayedMs = %d", s.DelayedMs)
	}
}

func TestBandwidthCapShapesThroughput(t *testing.T) {
	// 80 kbps: a 1000-byte write is 8000 bits -> 100 ms transmission time.
	in := NewInjector(Profile{Seed: 3, BandwidthKbps: 80})
	w, peer := pipe(t, in)
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := peer.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	if _, err := w.Write(make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("1000B at 80kbps took %v, want >= ~100ms", elapsed)
	}
}

func TestBlackholeDiscardsWritesAndStallsReads(t *testing.T) {
	in := NewInjector(Profile{Seed: 4})
	w, peer := pipe(t, in)
	in.SetMode(Blackhole)
	// Writes succeed locally but never reach the peer.
	if _, err := w.Write([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	peer.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 4)
	if _, err := peer.Read(buf); err == nil {
		t.Error("blackholed write was delivered")
	}
	// Reads stall until the deadline.
	w.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := w.Read(buf)
	if err == nil {
		t.Fatal("blackholed read returned data")
	}
	nerr, ok := err.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Errorf("want timeout error, got %v", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("read returned before deadline")
	}
	if s := in.Stats(); s.DiscardedWrites != 1 || s.Blackholes != 1 {
		t.Errorf("stats: %+v", s)
	}
}

func TestStallBlocksWritesUntilHealed(t *testing.T) {
	in := NewInjector(Profile{Seed: 5})
	w, peer := pipe(t, in)
	in.SetMode(Stall)
	done := make(chan error, 1)
	go func() {
		_, err := w.Write([]byte("held"))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("stalled write returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	in.SetMode(Healthy)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := peer.Read(buf); err != nil {
		t.Fatal(err)
	}
}

func TestStallHonorsWriteDeadline(t *testing.T) {
	in := NewInjector(Profile{Seed: 6})
	w, _ := pipe(t, in)
	in.SetMode(Stall)
	w.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := w.Write([]byte("x"))
	if err == nil {
		t.Fatal("stalled write succeeded")
	}
	nerr, ok := err.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Errorf("want timeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("deadline fired after %v", elapsed)
	}
}

func TestResetFailsImmediately(t *testing.T) {
	in := NewInjector(Profile{Seed: 7})
	w, _ := pipe(t, in)
	in.SetMode(Reset)
	if _, err := w.Write([]byte("x")); err != ErrReset {
		t.Errorf("write err = %v, want ErrReset", err)
	}
	if _, err := w.Read(make([]byte, 1)); err != ErrReset {
		t.Errorf("read err = %v, want ErrReset", err)
	}
}

func TestPartitionHeals(t *testing.T) {
	in := NewInjector(Profile{Seed: 8})
	w, peer := pipe(t, in)
	in.SetPartitioned(true)
	if _, err := w.Write([]byte("gone")); err != nil {
		t.Fatal(err)
	}
	in.SetPartitioned(false)
	if _, err := w.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := peer.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "back" {
		t.Errorf("got %q after heal, want \"back\"", buf)
	}
}

func TestProbabilisticDropIsDeterministic(t *testing.T) {
	// Two injectors with the same seed must blackhole on exactly the same
	// write index.
	countUntilDrop := func(seed uint64) int {
		in := NewInjector(Profile{Seed: seed, DropRate: 0.1})
		w, peer := pipe(t, in)
		go func() {
			buf := make([]byte, 64)
			for {
				if _, err := peer.Read(buf); err != nil {
					return
				}
			}
		}()
		for i := 1; i <= 1000; i++ {
			w.Write([]byte("probe"))
			if w.Mode() == Blackhole {
				return i
			}
		}
		return -1
	}
	a, b := countUntilDrop(42), countUntilDrop(42)
	if a != b {
		t.Errorf("same seed diverged: drop at write %d vs %d", a, b)
	}
	if a <= 0 {
		t.Errorf("DropRate 0.1 never dropped in 1000 writes (a=%d)", a)
	}
	if c := countUntilDrop(43); c == a {
		t.Logf("different seed coincidentally dropped at same index %d", c)
	}
}

func TestDialAndListenerWrap(t *testing.T) {
	in := NewInjector(Profile{Seed: 9})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := in.WrapListener(ln)
	defer wrapped.Close()
	go func() {
		c, aerr := wrapped.Accept()
		if aerr != nil {
			return
		}
		c.Write([]byte("hi"))
		c.Close()
	}()
	c, err := in.Dial("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 2)
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	if in.Stats().Conns != 2 {
		t.Errorf("conns = %d, want 2 (accepted + dialed)", in.Stats().Conns)
	}
}

func TestCloseWakesBlockedOperations(t *testing.T) {
	in := NewInjector(Profile{Seed: 10})
	w, _ := pipe(t, in)
	in.SetMode(Stall)
	done := make(chan error, 1)
	go func() {
		_, err := w.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	w.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("read on closed conn succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not wake blocked read")
	}
}

// TestAddrModeCrashesOneEndpoint exercises the per-address fault plane:
// resetting an address kills its existing connections and refuses new
// dials, while a second address on the same injector stays reachable —
// the exact shape of "crash the primary, leave the standby up".
func TestAddrModeCrashesOneEndpoint(t *testing.T) {
	in := NewInjector(Profile{Seed: 20})
	serve := func() net.Listener {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go func() {
			for {
				c, aerr := ln.Accept()
				if aerr != nil {
					return
				}
				go func(c net.Conn) {
					defer c.Close()
					buf := make([]byte, 64)
					for {
						n, rerr := c.Read(buf)
						if rerr != nil {
							return
						}
						c.Write(buf[:n])
					}
				}(c)
			}
		}()
		return ln
	}
	primary, standby := serve(), serve()

	pc, err := in.Dial("tcp", primary.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if _, err = pc.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}

	in.SetAddrMode(primary.Addr().String(), Reset)
	// The established connection dies...
	if _, err = pc.Write([]byte("x")); err != ErrReset {
		t.Errorf("write after crash = %v, want ErrReset", err)
	}
	// ...and new dials are refused without touching the network.
	if _, err = in.Dial("tcp", primary.Addr().String(), time.Second); err != ErrRefused {
		t.Errorf("dial to crashed addr = %v, want ErrRefused", err)
	}
	// The standby's address is untouched.
	sc, err := in.Dial("tcp", standby.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("standby unreachable: %v", err)
	}
	defer sc.Close()
	if _, err = sc.Write([]byte("up")); err != nil {
		t.Fatal(err)
	}
	sc.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 2)
	if _, err = sc.Read(buf); err != nil {
		t.Fatal(err)
	}
	if s := in.Stats(); s.RefusedDials != 1 {
		t.Errorf("RefusedDials = %d, want 1", s.RefusedDials)
	}
}

// TestAddrModeHealRestoresDials verifies that healing a crashed address
// lets dials through again, and that a partition mode (Blackhole) applies
// to the connection a dial to that address returns.
func TestAddrModeHealRestoresDials(t *testing.T) {
	in := NewInjector(Profile{Seed: 21})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, aerr := ln.Accept()
			if aerr != nil {
				return
			}
			defer c.Close()
		}
	}()
	addr := ln.Addr().String()

	in.SetAddrMode(addr, Reset)
	if _, err = in.Dial("tcp", addr, time.Second); err != ErrRefused {
		t.Fatalf("dial during crash = %v, want ErrRefused", err)
	}
	in.SetAddrMode(addr, Healthy)
	c, err := in.Dial("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	defer c.Close()

	// A partitioned address still accepts the dial, but the resulting
	// connection is born blackholed: writes vanish, reads stall.
	in.SetAddrMode(addr, Blackhole)
	bc, err := in.Dial("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("dial to partitioned addr: %v", err)
	}
	defer bc.Close()
	if fc, ok := bc.(*Conn); !ok || fc.Mode() != Blackhole {
		t.Errorf("dialed conn mode = %v, want Blackhole", bc.(*Conn).Mode())
	}
}

// TestCoalescedWritePassesThroughShaping covers the cloud's coalescing
// writer: several protocol frames appended into one buffer and flushed as
// a single Write must cross an injected link (latency + bandwidth shaping)
// intact, and the peer's FrameReader must recover every frame. The shaper
// sees one write whose cost is the sum of the frames — batching changes
// syscall count, not the modeled bits on the wire.
func TestCoalescedWritePassesThroughShaping(t *testing.T) {
	in := NewInjector(Profile{Seed: 11, AddedLatency: 5 * time.Millisecond, BandwidthKbps: 10000})
	w, peer := pipe(t, in)

	payloads := [][]byte{
		[]byte("tick-100"),
		[]byte("tick-101 with a longer delta payload"),
		{},
		bytes.Repeat([]byte{0xAB}, 1500),
	}
	var buf []byte
	for _, p := range payloads {
		var err error
		buf, err = protocol.AppendFrame(buf, protocol.MsgUpdateBatch, p)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Write(buf); err != nil {
		t.Fatal(err)
	}

	fr := protocol.NewFrameReader(peer)
	peer.SetReadDeadline(time.Now().Add(2 * time.Second))
	for i, want := range payloads {
		typ, got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != protocol.MsgUpdateBatch || !bytes.Equal(got, want) {
			t.Fatalf("frame %d: type %v payload %d bytes, want %d", i, typ, len(got), len(want))
		}
	}
	if s := in.Stats(); s.Writes != 1 {
		t.Errorf("coalesced flush counted as %d writes, want 1", s.Writes)
	}
}
