package faultnet

import (
	"net"
	"net/netip"
	"sync"
	"time"

	"cloudfog/internal/transport"
)

// WrapPacketConn wraps a datagram socket so the injector's datagram
// faults apply: per-datagram drop, pairwise reordering, and duplication
// drawn from the same deterministic decision stream as the stream
// faults, plus per-address modes — an address forced out of Healthy by
// SetAddrMode has its datagrams eaten in both directions, which is how a
// chaos test blackholes one peer's video path while its TCP control
// session stays up.
//
// Unlike stream faults, datagram faults never change a connection's
// mode: UDP loss is per-packet. The unreliable contract means every
// fault is silent — writes still report success.
func (in *Injector) WrapPacketConn(pc transport.DatagramConn) *PacketConn {
	return &PacketConn{inner: pc, inj: in}
}

// PacketConn is a fault-injected datagram socket.
type PacketConn struct {
	inner transport.DatagramConn
	inj   *Injector

	mu       sync.Mutex
	held     []byte // one datagram held back for reordering
	heldAddr netip.AddrPort
	heldSet  bool
}

var _ transport.DatagramConn = (*PacketConn)(nil)

// decideDatagram draws one datagram's fate deterministically. Exactly one
// of drop/reorder/dup can fire per datagram, drawn in that priority.
func (in *Injector) decideDatagram() (drop, reorder, dup bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Datagrams++
	p := in.profile
	if p.DatagramDropRate > 0 && in.r.Bool(p.DatagramDropRate) {
		in.stats.DroppedDatagrams++
		return true, false, false
	}
	if p.DatagramReorderRate > 0 && in.r.Bool(p.DatagramReorderRate) {
		return false, true, false
	}
	if p.DatagramDupRate > 0 && in.r.Bool(p.DatagramDupRate) {
		in.stats.DupDatagrams++
		return false, false, true
	}
	return false, false, false
}

// addrHealthy reports whether addr carries traffic (no per-address fault
// mode registered).
func (in *Injector) addrHealthy(addr string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.addrModes[addr] == Healthy
}

func (in *Injector) noteDroppedDatagram() {
	in.mu.Lock()
	in.stats.DroppedDatagrams++
	in.mu.Unlock()
}

func (in *Injector) noteReorderedDatagram() {
	in.mu.Lock()
	in.stats.ReorderedDatagrams++
	in.mu.Unlock()
}

// WriteToUDPAddrPort applies the datagram fault draw and forwards. Every
// fault is silent: the reported byte count is always len(b), exactly as
// a real socket reports a datagram the network later eats.
func (c *PacketConn) WriteToUDPAddrPort(b []byte, addr netip.AddrPort) (int, error) {
	if !c.inj.addrHealthy(addr.String()) {
		c.inj.noteDroppedDatagram()
		return len(b), nil
	}
	drop, reorder, dup := c.inj.decideDatagram()
	if drop {
		return len(b), nil
	}
	if reorder {
		// Hold this datagram back; it goes out after the next write (a
		// pairwise swap). A second reorder draw while one is already held
		// releases the older one first — at most one datagram is in
		// flight, and that release is in order (nothing overtook it), so
		// it does not count as reordered.
		c.mu.Lock()
		prev, prevAddr, had := c.held, c.heldAddr, c.heldSet
		if had {
			c.held = nil
		}
		c.mu.Unlock()
		if had {
			//lint:ignore conndeadline pass-through wrapper: deadline discipline is the caller's; SetWriteDeadline mirrors onto inner
			if _, err := c.inner.WriteToUDPAddrPort(prev, prevAddr); err != nil {
				return 0, err
			}
		}
		c.mu.Lock()
		c.held = append(c.held[:0], b...)
		c.heldAddr = addr
		c.heldSet = true
		c.mu.Unlock()
		return len(b), nil
	}
	//lint:ignore conndeadline pass-through wrapper: deadline discipline is the caller's; SetWriteDeadline mirrors onto inner
	n, err := c.inner.WriteToUDPAddrPort(b, addr)
	if err != nil {
		return n, err
	}
	if dup {
		//lint:ignore conndeadline pass-through wrapper: deadline discipline is the caller's; SetWriteDeadline mirrors onto inner
		c.inner.WriteToUDPAddrPort(b, addr)
	}
	// Release any held datagram behind this one.
	c.mu.Lock()
	prev, prevAddr, had := c.held, c.heldAddr, c.heldSet
	if had {
		c.held = nil
		c.heldSet = false
	}
	c.mu.Unlock()
	if had {
		//lint:ignore conndeadline pass-through wrapper: deadline discipline is the caller's; SetWriteDeadline mirrors onto inner
		c.inner.WriteToUDPAddrPort(prev, prevAddr)
		c.inj.noteReorderedDatagram()
	}
	return n, err
}

// ReadFromUDPAddrPort forwards reads, silently eating datagrams from
// addresses with a non-Healthy per-address mode — the receive half of a
// datagram blackhole.
func (c *PacketConn) ReadFromUDPAddrPort(b []byte) (int, netip.AddrPort, error) {
	for {
		//lint:ignore conndeadline pass-through wrapper: deadline discipline is the caller's; SetReadDeadline mirrors onto inner
		n, addr, err := c.inner.ReadFromUDPAddrPort(b)
		if err != nil {
			return n, addr, err
		}
		if c.inj.addrHealthy(addr.String()) {
			return n, addr, nil
		}
		c.inj.noteDroppedDatagram()
	}
}

// LocalAddr returns the underlying bound address.
func (c *PacketConn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// SetReadDeadline forwards to the underlying socket.
func (c *PacketConn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline forwards to the underlying socket.
func (c *PacketConn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// Close closes the underlying socket. A datagram still held for
// reordering is dropped with it — the network ate it.
func (c *PacketConn) Close() error {
	c.mu.Lock()
	if c.heldSet {
		c.held = nil
		c.heldSet = false
		c.inj.noteDroppedDatagram()
	}
	c.mu.Unlock()
	return c.inner.Close()
}
