// Package faultnet provides deterministic fault injection for net.Conn and
// net.Listener, so the networked CloudFog prototype can be exercised under
// the failure modes the paper's supernode tier actually exhibits: contributed
// desktops that slow down, silently vanish, freeze mid-stream, or reset
// connections (§3.2.2 churn handling).
//
// An Injector wraps connections and applies a Profile to every byte that
// crosses them:
//
//   - added one-way latency with jitter,
//   - a bandwidth cap (transmission-time shaping),
//   - probabilistic transitions into fault modes, and
//   - explicit, test-driven mode changes (Blackhole, Stall, Reset,
//     partitions) that apply to all wrapped connections at once, or — via
//     SetAddrMode — to every current and future connection to one
//     address, which is how a chaos test crashes a single tier (reset the
//     primary's address, leave the standby reachable).
//
// All randomness comes from internal/rng seeded by Profile.Seed: the
// sequence of fault decisions is reproducible bit-for-bit, which is what
// makes chaos tests assertable. Wrapped connections honor read and write
// deadlines even while a fault mode blocks them, so protocol code that
// defends itself with SetDeadline sees exactly the timeout it asked for.
//
// Fault modes model distinct real-world failures of a TCP peer:
//
//   - Blackhole: a silently dead peer. Writes succeed locally but are
//     discarded; reads stall. The peer sees silence — only liveness
//     heartbeats or read deadlines can detect this.
//   - Stall: a frozen peer (zero-window). Writes block; reads stall. Only
//     write deadlines and bounded send queues defend against this.
//   - Reset: an abrupt connection reset. Reads and writes fail immediately
//     and the underlying connection is closed.
//
// Healing a partition (back to Healthy) wakes all blocked readers/writers.
package faultnet

import (
	"errors"
	"net"
	"sync"
	"time"

	"cloudfog/internal/rng"
)

// Mode is the fault state of a connection.
type Mode int

// Fault modes.
const (
	// Healthy delivers traffic, subject to latency and bandwidth shaping.
	Healthy Mode = iota
	// Blackhole discards writes and stalls reads (silently dead peer).
	Blackhole
	// Stall blocks writes and reads until healed (frozen peer).
	Stall
	// Reset fails reads and writes immediately (abrupt connection reset).
	Reset
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Healthy:
		return "healthy"
	case Blackhole:
		return "blackhole"
	case Stall:
		return "stall"
	case Reset:
		return "reset"
	default:
		return "unknown"
	}
}

// ErrReset is returned by reads and writes on a reset connection.
var ErrReset = errors.New("faultnet: connection reset")

// ErrRefused is returned by Dial for an address forced into Reset mode —
// the synthetic equivalent of a crashed process whose port now answers
// with RST.
var ErrRefused = errors.New("faultnet: connection refused")

// timeoutError implements net.Error with Timeout() == true, matching what
// deadline-aware callers expect from a real net.Conn.
type timeoutError struct{}

func (timeoutError) Error() string   { return "faultnet: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// ErrTimeout is the deadline-exceeded error for faultnet-blocked operations.
var ErrTimeout net.Error = timeoutError{}

// Profile parameterizes an Injector.
type Profile struct {
	// Seed drives every probabilistic decision; identical seeds replay
	// identical fault sequences.
	Seed uint64
	// AddedLatency is extra one-way delay applied to each write.
	AddedLatency time.Duration
	// LatencyJitter adds a uniform [0, LatencyJitter) component on top.
	LatencyJitter time.Duration
	// BandwidthKbps caps throughput; writes are delayed by their
	// transmission time at this rate. 0 means unlimited.
	BandwidthKbps float64
	// DropRate is the per-write probability that the connection silently
	// transitions to Blackhole (a vanished peer).
	DropRate float64
	// ResetRate is the per-write probability that the connection
	// transitions to Reset (an abrupt RST).
	ResetRate float64

	// Datagram faults, applied per WriteToUDPAddrPort on wrapped packet
	// conns (see WrapPacketConn). Unlike the stream faults above they
	// affect single datagrams, not the connection's mode: UDP loss is
	// per-packet, not per-peer.
	//
	// DatagramDropRate is the probability one datagram is eaten.
	DatagramDropRate float64
	// DatagramReorderRate is the probability one datagram is held back
	// and delivered after the next one (a pairwise swap).
	DatagramReorderRate float64
	// DatagramDupRate is the probability one datagram is delivered twice.
	DatagramDupRate float64
}

// Stats counts injector activity.
type Stats struct {
	// Conns is the number of connections ever wrapped.
	Conns int
	// Writes is the number of Write calls observed.
	Writes int64
	// DiscardedWrites counts writes swallowed by Blackhole mode.
	DiscardedWrites int64
	// Resets counts connections that entered Reset mode.
	Resets int64
	// Blackholes counts connections that entered Blackhole mode.
	Blackholes int64
	// DelayedMs is the cumulative injected delay (latency + bandwidth).
	DelayedMs int64
	// RefusedDials counts dials synthetically refused because the target
	// address was in Reset mode (a "crashed" endpoint).
	RefusedDials int64
	// Datagrams counts WriteToUDPAddrPort calls on wrapped packet conns.
	Datagrams int64
	// DroppedDatagrams counts datagrams eaten — by DatagramDropRate or by
	// a non-Healthy per-address mode on either direction.
	DroppedDatagrams int64
	// ReorderedDatagrams counts datagrams delivered behind a later one.
	ReorderedDatagrams int64
	// DupDatagrams counts extra copies delivered by DatagramDupRate.
	DupDatagrams int64
}

// Injector wraps connections and injects the Profile's faults. All wrapped
// connections share one deterministic decision stream and respond together
// to SetMode/SetPartitioned.
type Injector struct {
	mu      sync.Mutex
	profile Profile
	r       *rng.Rand
	conns   map[*Conn]struct{}
	// addrModes holds per-address fault overrides keyed by dial target /
	// remote address; guarded by mu. Healthy entries are removed.
	addrModes map[string]Mode
	stats     Stats
}

// NewInjector builds an Injector for the profile.
func NewInjector(p Profile) *Injector {
	return &Injector{
		profile:   p,
		r:         rng.New(p.Seed),
		conns:     make(map[*Conn]struct{}),
		addrModes: make(map[string]Mode),
	}
}

// SetProfile swaps the fault profile for all future decisions — how a
// chaos test heals (or worsens) a lossy link mid-run. The deterministic
// decision stream keeps its position; only the rates change.
func (in *Injector) SetProfile(p Profile) {
	in.mu.Lock()
	in.profile = p
	in.mu.Unlock()
}

// WrapConn wraps an established connection. The connection inherits any
// per-address fault mode registered for its remote address.
func (in *Injector) WrapConn(c net.Conn) *Conn {
	addr := ""
	if ra := c.RemoteAddr(); ra != nil {
		addr = ra.String()
	}
	return in.wrap(c, addr)
}

func (in *Injector) wrap(c net.Conn, addr string) *Conn {
	fc := &Conn{
		inner:  c,
		inj:    in,
		addr:   addr,
		healCh: make(chan struct{}),
		closed: make(chan struct{}),
	}
	in.mu.Lock()
	in.conns[fc] = struct{}{}
	in.stats.Conns++
	m := in.addrModes[addr]
	in.mu.Unlock()
	if m != Healthy {
		fc.SetMode(m)
	}
	return fc
}

// Dial dials through the injector: the returned connection is wrapped and
// tagged with the dialed address, so SetAddrMode can target it later. A
// dial to an address currently in Reset mode is refused synthetically —
// the caller sees a crashed endpoint without any network round trip; an
// address in Blackhole or Stall mode yields a connection already in that
// mode (a partition that ate the SYN).
func (in *Injector) Dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	in.mu.Lock()
	m := in.addrModes[addr]
	if m == Reset {
		in.stats.RefusedDials++
		in.mu.Unlock()
		return nil, ErrRefused
	}
	in.mu.Unlock()
	c, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	return in.wrap(c, addr), nil
}

// SetAddrMode forces every connection to addr — current and future —
// into the mode. Reset crashes the endpoint: existing connections die and
// new dials are refused until the address is healed with
// SetAddrMode(addr, Healthy). Blackhole/Stall partition it.
func (in *Injector) SetAddrMode(addr string, m Mode) {
	in.mu.Lock()
	if m == Healthy {
		delete(in.addrModes, addr)
	} else {
		in.addrModes[addr] = m
	}
	conns := make([]*Conn, 0, len(in.conns))
	for c := range in.conns {
		if c.addr == addr {
			conns = append(conns, c)
		}
	}
	in.mu.Unlock()
	for _, c := range conns {
		c.SetMode(m)
	}
}

// WrapListener wraps a listener so every accepted connection is injected.
func (in *Injector) WrapListener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, inj: in}
}

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.WrapConn(c), nil
}

// SetMode forces every wrapped connection into the mode. Healing to
// Healthy wakes connections blocked by Blackhole or Stall; Reset closes
// them permanently.
func (in *Injector) SetMode(m Mode) {
	in.mu.Lock()
	conns := make([]*Conn, 0, len(in.conns))
	for c := range in.conns {
		conns = append(conns, c)
	}
	in.mu.Unlock()
	for _, c := range conns {
		c.SetMode(m)
	}
}

// SetPartitioned toggles a network partition: true blackholes every
// connection, false heals them.
func (in *Injector) SetPartitioned(p bool) {
	if p {
		in.SetMode(Blackhole)
	} else {
		in.SetMode(Healthy)
	}
}

// Stats snapshots the injector counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// decide draws the per-write fault decision deterministically. It returns
// the mode the write should transition the connection into (Healthy means
// no transition) and the injected delay for a healthy write of n bytes.
func (in *Injector) decide(n int) (Mode, time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Writes++
	p := in.profile
	if p.ResetRate > 0 && in.r.Bool(p.ResetRate) {
		return Reset, 0
	}
	if p.DropRate > 0 && in.r.Bool(p.DropRate) {
		return Blackhole, 0
	}
	delay := p.AddedLatency
	if p.LatencyJitter > 0 {
		delay += time.Duration(in.r.Uniform(0, float64(p.LatencyJitter)))
	}
	if p.BandwidthKbps > 0 {
		tx := time.Duration(float64(n*8) / p.BandwidthKbps * float64(time.Millisecond))
		delay += tx
	}
	return Healthy, delay
}

func (in *Injector) addDelay(d time.Duration) {
	in.mu.Lock()
	in.stats.DelayedMs += d.Milliseconds()
	in.mu.Unlock()
}

func (in *Injector) noteMode(m Mode) {
	in.mu.Lock()
	switch m {
	case Reset:
		in.stats.Resets++
	case Blackhole:
		in.stats.Blackholes++
	}
	in.mu.Unlock()
}

func (in *Injector) noteDiscard() {
	in.mu.Lock()
	in.stats.DiscardedWrites++
	in.mu.Unlock()
}

func (in *Injector) forget(c *Conn) {
	in.mu.Lock()
	delete(in.conns, c)
	in.mu.Unlock()
}

// Conn is a fault-injected connection.
type Conn struct {
	inner net.Conn
	inj   *Injector
	addr  string // dial target / remote address; immutable after wrap

	mu        sync.Mutex
	mode      Mode
	healCh    chan struct{} // replaced and closed on every mode change
	closed    chan struct{}
	closeOnce sync.Once
	rdl, wdl  time.Time // deadlines mirrored for faultnet-level blocking
	nextFree  time.Time // bandwidth shaping: when the link is free again
}

var _ net.Conn = (*Conn)(nil)

// Mode returns the connection's current fault mode.
func (c *Conn) Mode() Mode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mode
}

// SetMode transitions this connection alone and wakes anything blocked on
// it; use Injector.SetMode to transition every wrapped connection.
func (c *Conn) SetMode(m Mode) {
	c.mu.Lock()
	if c.mode == m {
		c.mu.Unlock()
		return
	}
	c.mode = m
	close(c.healCh)
	c.healCh = make(chan struct{})
	c.mu.Unlock()
	c.inj.noteMode(m)
	if m == Reset {
		c.inner.Close()
	}
}

// await blocks until the connection leaves blocking modes, the deadline
// passes, or the connection closes. It returns the mode to act on.
func (c *Conn) await(deadline time.Time) (Mode, error) {
	for {
		c.mu.Lock()
		m := c.mode
		heal := c.healCh
		c.mu.Unlock()
		if m == Healthy || m == Reset {
			return m, nil
		}
		var timer <-chan time.Time
		if !deadline.IsZero() {
			d := time.Until(deadline)
			if d <= 0 {
				return m, ErrTimeout
			}
			t := time.NewTimer(d)
			defer t.Stop()
			timer = t.C
		}
		select {
		case <-heal:
		case <-c.closed:
			return m, net.ErrClosed
		case <-timer:
			return m, ErrTimeout
		}
	}
}

// sleep waits for the injected delay, cut short by the deadline or close.
func (c *Conn) sleep(d time.Duration, deadline time.Time) error {
	if d <= 0 {
		return nil
	}
	c.inj.addDelay(d)
	if !deadline.IsZero() {
		if remain := time.Until(deadline); remain < d {
			if remain > 0 {
				t := time.NewTimer(remain)
				defer t.Stop()
				select {
				case <-t.C:
				case <-c.closed:
					return net.ErrClosed
				}
			}
			return ErrTimeout
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.closed:
		return net.ErrClosed
	}
}

// Write applies the fault decision, shapes the traffic, and forwards.
func (c *Conn) Write(b []byte) (int, error) {
	next, delay := c.inj.decide(len(b))
	if next != Healthy {
		c.SetMode(next)
	}
	c.mu.Lock()
	mode := c.mode
	wdl := c.wdl
	c.mu.Unlock()
	switch mode {
	case Reset:
		return 0, ErrReset
	case Blackhole:
		c.inj.noteDiscard()
		return len(b), nil
	case Stall:
		m, err := c.await(wdl)
		if err != nil {
			return 0, err
		}
		if m == Reset {
			return 0, ErrReset
		}
	}
	// Bandwidth shaping serializes writes on the virtual link.
	c.mu.Lock()
	now := time.Now()
	start := now
	if c.nextFree.After(now) {
		start = c.nextFree
	}
	c.nextFree = start.Add(delay)
	wait := c.nextFree.Sub(now)
	c.mu.Unlock()
	if err := c.sleep(wait, wdl); err != nil {
		return 0, err
	}
	//lint:ignore conndeadline pass-through wrapper: deadline discipline is the caller's; SetWriteDeadline mirrors onto inner
	return c.inner.Write(b)
}

// Read stalls in Blackhole/Stall modes, otherwise forwards.
func (c *Conn) Read(b []byte) (int, error) {
	c.mu.Lock()
	mode := c.mode
	rdl := c.rdl
	c.mu.Unlock()
	if mode == Reset {
		return 0, ErrReset
	}
	if mode == Blackhole || mode == Stall {
		m, err := c.await(rdl)
		if err != nil {
			return 0, err
		}
		if m == Reset {
			return 0, ErrReset
		}
	}
	//lint:ignore conndeadline pass-through wrapper: deadline discipline is the caller's; SetReadDeadline mirrors onto inner
	return c.inner.Read(b)
}

// Close closes the connection and wakes all blocked operations.
func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		c.inj.forget(c)
		err = c.inner.Close()
	})
	return err
}

// LocalAddr returns the underlying local address.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr returns the underlying remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline sets both read and write deadlines.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdl, c.wdl = t, t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

// SetReadDeadline mirrors the deadline for faultnet-level blocking and
// forwards it to the underlying connection.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdl = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

// SetWriteDeadline mirrors the deadline for faultnet-level blocking and
// forwards it to the underlying connection.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wdl = t
	c.mu.Unlock()
	return c.inner.SetWriteDeadline(t)
}
