// Package trace provides the ping-latency trace the simulator samples
// per-pair network jitter from.
//
// The paper samples communication latency between node pairs "from the ping
// latency traces from the League of Legends based on each latency's
// occurrence frequency". That trace is not publicly distributable, so we
// substitute a synthetic histogram with the published shape of the LoL
// latency distribution: a strong mode in the 40-80 ms band, a shoulder up
// to ~150 ms, and a long tail reaching past 300 ms. Only the shape enters
// the results (it drives coverage and continuity), so the substitution
// preserves the behavior the paper measures. See DESIGN.md §5.
package trace

import "cloudfog/internal/rng"

// Bucket is one bin of a latency histogram.
type Bucket struct {
	// LatencyMs is the representative round-trip latency of the bin.
	LatencyMs float64
	// Frequency is the relative occurrence frequency of the bin.
	Frequency float64
}

// PingTrace is an empirical latency distribution sampled by frequency.
type PingTrace struct {
	buckets []Bucket
	sampler *rng.Weighted
	mean    float64
}

// LeagueOfLegends returns the synthetic stand-in for the LoL ping trace used
// by the paper (see the package comment for the substitution rationale).
func LeagueOfLegends() *PingTrace {
	return New([]Bucket{
		{LatencyMs: 15, Frequency: 0.03},
		{LatencyMs: 25, Frequency: 0.07},
		{LatencyMs: 35, Frequency: 0.12},
		{LatencyMs: 45, Frequency: 0.16},
		{LatencyMs: 55, Frequency: 0.15},
		{LatencyMs: 65, Frequency: 0.12},
		{LatencyMs: 80, Frequency: 0.10},
		{LatencyMs: 100, Frequency: 0.08},
		{LatencyMs: 125, Frequency: 0.06},
		{LatencyMs: 150, Frequency: 0.04},
		{LatencyMs: 180, Frequency: 0.03},
		{LatencyMs: 220, Frequency: 0.02},
		{LatencyMs: 270, Frequency: 0.012},
		{LatencyMs: 330, Frequency: 0.008},
	})
}

// WideArea returns a heavier-tailed trace used by the PlanetLab profile,
// where inter-site paths cross the public Internet between universities and
// exhibit more variance than consumer game traffic.
func WideArea() *PingTrace {
	return New([]Bucket{
		{LatencyMs: 25, Frequency: 0.05},
		{LatencyMs: 40, Frequency: 0.11},
		{LatencyMs: 55, Frequency: 0.15},
		{LatencyMs: 70, Frequency: 0.15},
		{LatencyMs: 90, Frequency: 0.14},
		{LatencyMs: 110, Frequency: 0.11},
		{LatencyMs: 135, Frequency: 0.09},
		{LatencyMs: 165, Frequency: 0.07},
		{LatencyMs: 200, Frequency: 0.05},
		{LatencyMs: 250, Frequency: 0.04},
		{LatencyMs: 310, Frequency: 0.025},
		{LatencyMs: 380, Frequency: 0.015},
	})
}

// New builds a PingTrace from histogram buckets. All frequencies must be
// non-negative with a positive total; otherwise New returns nil.
func New(buckets []Bucket) *PingTrace {
	if len(buckets) == 0 {
		return nil
	}
	values := make([]float64, len(buckets))
	weights := make([]float64, len(buckets))
	var wsum, lsum float64
	for i, b := range buckets {
		if b.Frequency < 0 || b.LatencyMs < 0 {
			return nil
		}
		values[i] = b.LatencyMs
		weights[i] = b.Frequency
		wsum += b.Frequency
		lsum += b.LatencyMs * b.Frequency
	}
	sampler := rng.NewWeighted(values, weights)
	if sampler == nil {
		return nil
	}
	return &PingTrace{
		buckets: append([]Bucket(nil), buckets...),
		sampler: sampler,
		mean:    lsum / wsum,
	}
}

// Sample draws one round-trip latency (milliseconds) by occurrence
// frequency, with uniform within-bucket smearing of ±20% so that repeated
// draws do not collapse onto the bin centers.
func (t *PingTrace) Sample(r *rng.Rand) float64 {
	base := t.sampler.Sample(r)
	return base * r.Uniform(0.8, 1.2)
}

// Mean returns the frequency-weighted mean latency of the trace in
// milliseconds (without smearing).
func (t *PingTrace) Mean() float64 { return t.mean }

// Buckets returns a copy of the underlying histogram.
func (t *PingTrace) Buckets() []Bucket {
	return append([]Bucket(nil), t.buckets...)
}
