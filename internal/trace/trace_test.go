package trace

import (
	"math"
	"testing"

	"cloudfog/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if New(nil) != nil {
		t.Error("empty trace accepted")
	}
	if New([]Bucket{{LatencyMs: 10, Frequency: -1}}) != nil {
		t.Error("negative frequency accepted")
	}
	if New([]Bucket{{LatencyMs: -10, Frequency: 1}}) != nil {
		t.Error("negative latency accepted")
	}
	if New([]Bucket{{LatencyMs: 10, Frequency: 0}}) != nil {
		t.Error("zero total frequency accepted")
	}
	if New([]Bucket{{LatencyMs: 10, Frequency: 1}}) == nil {
		t.Error("valid trace rejected")
	}
}

func TestMean(t *testing.T) {
	tr := New([]Bucket{
		{LatencyMs: 10, Frequency: 1},
		{LatencyMs: 30, Frequency: 3},
	})
	if got, want := tr.Mean(), 25.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
}

func TestSampleRange(t *testing.T) {
	tr := New([]Bucket{
		{LatencyMs: 50, Frequency: 1},
	})
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		s := tr.Sample(r)
		// ±20% within-bucket smear.
		if s < 40 || s > 60 {
			t.Fatalf("sample %v outside smear range", s)
		}
	}
}

func TestSampleRespectsFrequencies(t *testing.T) {
	tr := New([]Bucket{
		{LatencyMs: 10, Frequency: 0.9},
		{LatencyMs: 1000, Frequency: 0.1},
	})
	r := rng.New(2)
	low := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if tr.Sample(r) < 500 {
			low++
		}
	}
	p := float64(low) / n
	if math.Abs(p-0.9) > 0.02 {
		t.Errorf("low-bucket frequency %v, want ~0.9", p)
	}
}

func TestSampleEmpiricalMean(t *testing.T) {
	tr := LeagueOfLegends()
	r := rng.New(3)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += tr.Sample(r)
	}
	mean := sum / n
	if math.Abs(mean-tr.Mean()) > 0.03*tr.Mean() {
		t.Errorf("empirical mean %v vs analytic %v", mean, tr.Mean())
	}
}

func TestBuiltinTraces(t *testing.T) {
	lol := LeagueOfLegends()
	wa := WideArea()
	if lol == nil || wa == nil {
		t.Fatal("builtin trace nil")
	}
	// The PlanetLab substitute must be slower on average than the LoL
	// consumer trace — that is its purpose.
	if wa.Mean() <= lol.Mean() {
		t.Errorf("WideArea mean %v not heavier than LoL %v", wa.Mean(), lol.Mean())
	}
	// Both must exhibit a long tail: max bucket at least 3x the mean.
	for name, tr := range map[string]*PingTrace{"lol": lol, "wide": wa} {
		var maxLat float64
		for _, b := range tr.Buckets() {
			if b.LatencyMs > maxLat {
				maxLat = b.LatencyMs
			}
		}
		if maxLat < 2.5*tr.Mean() {
			t.Errorf("%s trace lacks a tail: max %v mean %v", name, maxLat, tr.Mean())
		}
	}
}

func TestBucketsCopy(t *testing.T) {
	tr := LeagueOfLegends()
	bs := tr.Buckets()
	bs[0].LatencyMs = 99999
	if tr.Buckets()[0].LatencyMs == 99999 {
		t.Error("Buckets exposes internal state")
	}
}

func TestSampleDeterministic(t *testing.T) {
	tr := LeagueOfLegends()
	a := tr.Sample(rng.New(7))
	b := tr.Sample(rng.New(7))
	if a != b {
		t.Errorf("same-seed samples differ: %v vs %v", a, b)
	}
}
