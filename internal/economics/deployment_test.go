package economics

import (
	"math"
	"testing"
)

// concaveCoverage is a diminishing-returns coverage curve: n(m) grows fast
// for the first supernodes and saturates at the population.
func concaveCoverage(population float64, halfAt float64) func(int) int {
	return func(m int) int {
		if m <= 0 {
			return 0
		}
		return int(population * float64(m) / (float64(m) + halfAt))
	}
}

func testModel() DeploymentModel {
	return DeploymentModel{
		ServerBandwidthValue: 0.002, // $ per kbps saved
		SupernodeReward:      0.001, // $ per kbps contributed
		StreamRate:           1200,
		UpdateRate:           150,
		SupernodeUpload:      24000, // carries ~20 streams
		CoveredPlayers:       concaveCoverage(10000, 40),
	}
}

func TestOptimalDeploymentValidation(t *testing.T) {
	m := testModel()
	m.CoveredPlayers = nil
	if _, _, err := OptimalDeployment(m, 10); err == nil {
		t.Error("nil coverage accepted")
	}
	m = testModel()
	m.StreamRate = 0
	if _, _, err := OptimalDeployment(m, 10); err == nil {
		t.Error("zero stream rate accepted")
	}
	m = testModel()
	m.ServerBandwidthValue = -1
	if _, _, err := OptimalDeployment(m, 10); err == nil {
		t.Error("negative price accepted")
	}
}

func TestOptimalDeploymentInterior(t *testing.T) {
	best, sweep, err := OptimalDeployment(testModel(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 2001 {
		t.Fatalf("sweep length %d", len(sweep))
	}
	// The optimum is interior: deploying nothing saves nothing, and
	// past saturation every extra supernode only costs Λ.
	if best.Supernodes <= 0 || best.Supernodes >= 2000 {
		t.Errorf("optimum %d not interior", best.Supernodes)
	}
	if best.SavingUSD <= 0 {
		t.Errorf("optimal saving %v not positive", best.SavingUSD)
	}
	if sweep[0].SavingUSD != 0 {
		t.Errorf("zero fleet saving = %v", sweep[0].SavingUSD)
	}
	if sweep[2000].SavingUSD >= best.SavingUSD {
		t.Error("saturated fleet not worse than the optimum")
	}
}

func TestOptimalDeploymentCapacityBinds(t *testing.T) {
	// With few supernodes, coverage exceeds capacity: Eq. 4 must clip
	// covered players and mark the point infeasible.
	m := testModel()
	m.SupernodeUpload = 2400 // only 2 streams per supernode
	_, sweep, err := OptimalDeployment(m, 50)
	if err != nil {
		t.Fatal(err)
	}
	p := sweep[10]
	if p.Feasible {
		t.Errorf("capacity-bound point marked feasible: %+v", p)
	}
	if p.Covered != 10*2 {
		t.Errorf("covered %d, want capacity-clipped 20", p.Covered)
	}
}

func TestMarginalGainCrossesZeroNearOptimum(t *testing.T) {
	m := testModel()
	best, _, err := OptimalDeployment(m, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 6: the marginal gain is positive well below the optimum and
	// negative well above it.
	if g := m.MarginalGain(best.Supernodes / 4); g <= 0 {
		t.Errorf("marginal gain below optimum = %v, want positive", g)
	}
	if g := m.MarginalGain(best.Supernodes * 3); g >= 0 {
		t.Errorf("marginal gain above optimum = %v, want negative", g)
	}
}

func TestSavingConcaveAroundOptimum(t *testing.T) {
	// Sanity: the sweep is unimodal for a concave coverage curve (rises
	// to the optimum, falls after).
	best, sweep, err := OptimalDeployment(testModel(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	// Integer coverage makes the curve a staircase: between coverage
	// increments the saving dips by at most one supernode's update cost.
	maxDip := testModel().ServerBandwidthValue*testModel().UpdateRate + 1e-9
	for i := 1; i < best.Supernodes; i++ {
		if sweep[i].SavingUSD < sweep[i-1].SavingUSD-maxDip {
			t.Fatalf("saving fell before the optimum at m=%d", i)
		}
	}
	tail := sweep[best.Supernodes:]
	drops := 0
	for i := 1; i < len(tail); i++ {
		if tail[i].SavingUSD < tail[i-1].SavingUSD {
			drops++
		}
	}
	if drops < len(tail)/2 {
		t.Error("saving does not decline past the optimum")
	}
	// The optimum covers most of the population at these prices.
	if float64(best.Covered) < 0.5*10000 {
		t.Errorf("optimal coverage only %d players", best.Covered)
	}
	if math.IsNaN(best.SavingUSD) {
		t.Error("NaN saving")
	}
}
