package economics

import "fmt"

// This file implements the provider-side deployment optimization the paper
// formulates in Eq. 3–5 and poses as future work in §5 ("determining the
// optimal number of cloud servers so that players can perceive the best
// QoE"): given how coverage grows with fleet size, choose the number of
// supernodes that maximizes the provider's saved cost
//
//	C_g = max_m ( c_c · [n(m)·R − Λ·m] − c_s · B_s(m) )
//
// subject to the capacity constraint Σ c_j·u_j ≥ n(m)·R (Eq. 4) and
// per-node utilization bounds (Eq. 5).

// DeploymentModel describes the provider's economics for a fleet sweep.
type DeploymentModel struct {
	// ServerBandwidthValue is c_c: revenue gained per unit of saved
	// server bandwidth.
	ServerBandwidthValue float64
	// SupernodeReward is c_s: the per-unit reward paid for contributed
	// bandwidth.
	SupernodeReward float64
	// StreamRate is R: the game-video streaming rate per player.
	StreamRate float64
	// UpdateRate is Λ: the per-supernode update-stream bandwidth.
	UpdateRate float64
	// SupernodeUpload is the mean usable upload capacity per supernode
	// (c_j·u_j under the Eq. 5 bound).
	SupernodeUpload float64
	// CoveredPlayers returns n(m): how many players m supernodes can
	// cover (a concave, increasing function — diminishing geographic
	// returns).
	CoveredPlayers func(m int) int
}

// DeploymentPoint is one fleet size of the sweep.
type DeploymentPoint struct {
	// Supernodes is m.
	Supernodes int
	// Covered is n(m), capped by the fleet's capacity constraint (Eq. 4).
	Covered int
	// SavingUSD is C_g at this fleet size.
	SavingUSD float64
	// Feasible reports whether Eq. 4 binds (the fleet can actually carry
	// the covered players).
	Feasible bool
}

// validate checks the model.
func (m DeploymentModel) validate() error {
	if m.ServerBandwidthValue <= 0 || m.SupernodeReward < 0 {
		return fmt.Errorf("economics: invalid prices c_c=%g c_s=%g", m.ServerBandwidthValue, m.SupernodeReward)
	}
	if m.StreamRate <= 0 || m.UpdateRate < 0 || m.SupernodeUpload <= 0 {
		return fmt.Errorf("economics: invalid rates R=%g Λ=%g upload=%g",
			m.StreamRate, m.UpdateRate, m.SupernodeUpload)
	}
	if m.CoveredPlayers == nil {
		return fmt.Errorf("economics: CoveredPlayers is required")
	}
	return nil
}

// evaluate computes one sweep point.
func (m DeploymentModel) evaluate(fleet int) DeploymentPoint {
	covered := m.CoveredPlayers(fleet)
	if covered < 0 {
		covered = 0
	}
	// Eq. 4: the fleet's usable upload must carry the covered players'
	// streams; excess coverage is clipped to what capacity sustains.
	capacityPlayers := int(float64(fleet) * m.SupernodeUpload / m.StreamRate)
	feasible := covered <= capacityPlayers
	if !feasible {
		covered = capacityPlayers
	}
	// Eq. 2 then Eq. 3. B_s is the bandwidth actually used for the
	// covered players (utilization below the Eq. 5 cap).
	reduction := BandwidthReduction(covered, m.StreamRate, fleet, m.UpdateRate)
	contributed := float64(covered) * m.StreamRate
	return DeploymentPoint{
		Supernodes: fleet,
		Covered:    covered,
		SavingUSD:  ProviderSaving(m.ServerBandwidthValue, reduction, m.SupernodeReward, contributed),
		Feasible:   feasible,
	}
}

// OptimalDeployment sweeps fleet sizes 0..maxSupernodes and returns the
// point maximizing C_g together with the whole sweep. It returns an error
// for an invalid model.
func OptimalDeployment(m DeploymentModel, maxSupernodes int) (best DeploymentPoint, sweep []DeploymentPoint, err error) {
	if err := m.validate(); err != nil {
		return DeploymentPoint{}, nil, err
	}
	if maxSupernodes < 0 {
		maxSupernodes = 0
	}
	sweep = make([]DeploymentPoint, 0, maxSupernodes+1)
	for fleet := 0; fleet <= maxSupernodes; fleet++ {
		p := m.evaluate(fleet)
		sweep = append(sweep, p)
		if fleet == 0 || p.SavingUSD > best.SavingUSD {
			best = p
		}
	}
	return best, sweep, nil
}

// MarginalGain returns G_s at fleet size m: the gain from deploying the
// (m+1)-th supernode (Eq. 6 evaluated on the coverage curve). The
// supernode's rewarded bandwidth c_j·u_j is what the ν new players
// actually draw (bounded by its capacity), not the nominal capacity —
// rewards are paid per contributed gigabyte. Deployment should stop where
// this crosses zero, which coincides with the OptimalDeployment maximum
// for concave coverage.
func (m DeploymentModel) MarginalGain(fleet int) float64 {
	nu := m.CoveredPlayers(fleet+1) - m.CoveredPlayers(fleet)
	if nu < 0 {
		nu = 0
	}
	drawn := float64(nu) * m.StreamRate
	if drawn > m.SupernodeUpload {
		drawn = m.SupernodeUpload
	}
	return DeploymentGain(m.ServerBandwidthValue, nu, m.StreamRate, m.UpdateRate,
		m.SupernodeReward, drawn, 1)
}
