package economics

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSupernodeProfitEq1(t *testing.T) {
	// P_s(j) = c_s*c_j*u_j - cost_j.
	if got := SupernodeProfit(1.0, 10, 0.5, 2); !almostEq(got, 3) {
		t.Errorf("profit = %v, want 3", got)
	}
	if got := SupernodeProfit(1.0, 10, 0, 2); !almostEq(got, -2) {
		t.Errorf("idle profit = %v, want -2", got)
	}
}

func TestBandwidthReductionEq2(t *testing.T) {
	// B_r = n*R - Λ*m.
	if got := BandwidthReduction(100, 1200, 10, 150); !almostEq(got, 100*1200-10*150) {
		t.Errorf("reduction = %v", got)
	}
	// Supernodes that serve nobody only cost update bandwidth.
	if got := BandwidthReduction(0, 1200, 10, 150); got >= 0 {
		t.Errorf("idle fog should reduce nothing: %v", got)
	}
}

func TestProviderSavingEq3(t *testing.T) {
	// C_g = c_c*B_r - c_s*B_s.
	if got := ProviderSaving(2, 1000, 1, 500); !almostEq(got, 1500) {
		t.Errorf("saving = %v", got)
	}
}

func TestDeploymentGainEq6(t *testing.T) {
	// G_s(j) = c_c*(ν*R - Λ) - c_s*c_j*u_j. Positive gain justifies
	// deployment.
	gain := DeploymentGain(0.001, 20, 1200, 150, 0.001, 50000, 0.5)
	want := 0.001*(20*1200-150) - 0.001*50000*0.5
	if !almostEq(gain, want) {
		t.Errorf("gain = %v, want %v", gain, want)
	}
	// A supernode attracting no new players is not worth deploying.
	if DeploymentGain(0.001, 0, 1200, 150, 0.001, 50000, 0.5) >= 0 {
		t.Error("zero-coverage supernode should have negative gain")
	}
}

func TestSupernodeDailyEconomics(t *testing.T) {
	e := SupernodeDailyEconomics(10, 1.0)
	if !almostEq(e.RewardUSD, 10) { // $1/GB * 1 GB/h * 10 h
		t.Errorf("reward = %v", e.RewardUSD)
	}
	wantCost := ServerPowerKW * ElectricityUSDPerKWh * 10
	if !almostEq(e.CostUSD, wantCost) {
		t.Errorf("cost = %v, want %v", e.CostUSD, wantCost)
	}
	if !almostEq(e.ProfitUSD, e.RewardUSD-e.CostUSD) {
		t.Error("profit inconsistent")
	}
	// The paper's observation: costs are trivial compared to rewards.
	if e.CostUSD > 0.1*e.RewardUSD {
		t.Errorf("electricity (%v) not trivial next to rewards (%v)", e.CostUSD, e.RewardUSD)
	}
}

func TestSupernodeDailyEconomicsClampsHours(t *testing.T) {
	if e := SupernodeDailyEconomics(-5, 1); e.HoursPerDay != 0 || e.RewardUSD != 0 {
		t.Errorf("negative hours: %+v", e)
	}
	if e := SupernodeDailyEconomics(30, 1); e.HoursPerDay != 24 {
		t.Errorf("hours not clamped to 24: %+v", e)
	}
}

func TestProviderSavings(t *testing.T) {
	e := ProviderSavings(100, 1.0)
	if !almostEq(e.RentingFeeUSD, 260) { // $2.6/h * 100 h
		t.Errorf("renting = %v", e.RentingFeeUSD)
	}
	if !almostEq(e.RewardToSupernodeUSD, 100) {
		t.Errorf("reward = %v", e.RewardToSupernodeUSD)
	}
	if !almostEq(e.SavingUSD, 160) {
		t.Errorf("saving = %v", e.SavingUSD)
	}
	if e2 := ProviderSavings(-1, 1); e2.Hours != 0 {
		t.Errorf("negative hours not clamped: %+v", e2)
	}
}

func TestSavingsPositiveForModestUploadProperty(t *testing.T) {
	// Property: whenever the supernode uploads less than $2.6/h worth of
	// bandwidth, the provider saves money vs renting EC2, proportionally
	// to hours.
	f := func(hoursRaw, gbRaw uint8) bool {
		hours := float64(hoursRaw%200) + 1
		gbPerHour := float64(gbRaw%26) / 10 // 0..2.5 GB/h < 2.6
		e := ProviderSavings(hours, gbPerHour)
		return e.SavingUSD >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAnnualSupernodeFleetCost(t *testing.T) {
	// The paper's estimate: ~3,000 supernodes at 24 h/day should cost a
	// few million dollars a year — far less than a $400M datacenter.
	cost := AnnualSupernodeFleetCostUSD(3000, 24, 0.11)
	if cost < 1e6 || cost > 20e6 {
		t.Errorf("fleet cost %v outside the paper's millions-per-year band", cost)
	}
	if cost >= MediumDatacenterUSD {
		t.Error("fleet should be cheaper than building a datacenter")
	}
}

func TestPricingConstants(t *testing.T) {
	if ServerPowerKW != 0.25 {
		t.Error("server power changed from the paper's 0.25 kW")
	}
	if ElectricityUSDPerKWh != 0.108 {
		t.Error("electricity price changed from the paper's 10.8 c/kWh")
	}
	if RewardUSDPerGB != 1.0 {
		t.Error("reward changed from the paper's $1/GB")
	}
	if EC2GPUInstanceUSDPerHour != 2.6 {
		t.Error("EC2 price changed from the paper's $2.60/h")
	}
}
