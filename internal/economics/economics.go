// Package economics implements the incentive and cost model of §3.1.1–3.1.2
// and the Fig. 16 analyses of the CloudFog paper: supernode contributor
// profit (Eq. 1), system bandwidth reduction (Eq. 2), game-service-provider
// saving (Eq. 3–6), and the reward/electricity/EC2-renting comparisons.
package economics

// Pricing constants from the paper's §4.4 analysis.
const (
	// ServerPowerKW is the electric power draw of a typical supernode
	// machine (0.25 kW).
	ServerPowerKW = 0.25
	// ElectricityUSDPerKWh is the US average electricity price the paper
	// uses (10.8 cents/kWh).
	ElectricityUSDPerKWh = 0.108
	// RewardUSDPerGB is what the provider pays per GB of supernode upload
	// ("the game service provider pays 1 dollar for 1 GB bandwidth").
	RewardUSDPerGB = 1.0
	// EC2GPUInstanceUSDPerHour is the g2.8xlarge hourly rate ($2.60).
	EC2GPUInstanceUSDPerHour = 2.6
	// MediumDatacenterUSD is the construction cost of a medium (~300,000
	// sq ft) datacenter the paper quotes (~$400 million).
	MediumDatacenterUSD = 400e6
)

// SupernodeProfit returns P_s(j) = c_s*c_j*u_j − cost_j (Eq. 1): the profit
// a contributor earns from a supernode with upload capacity capacity (in
// reward-bandwidth units), utilization in [0, 1], per-unit reward
// rewardPerUnit, and running cost cost (same currency).
func SupernodeProfit(rewardPerUnit, capacity, utilization, cost float64) float64 {
	return rewardPerUnit*capacity*utilization - cost
}

// BandwidthReduction returns B_r = n*R − Λ*m (Eq. 2): the cloud bandwidth
// saved when m supernodes serve n players at streaming rate streamRate,
// costing only the per-supernode update stream updateRate (Λ).
func BandwidthReduction(supportedPlayers int, streamRate float64, supernodes int, updateRate float64) float64 {
	return float64(supportedPlayers)*streamRate - updateRate*float64(supernodes)
}

// ProviderSaving returns C_g = c_c*B_r − c_s*B_s (Eq. 3): the provider's
// net saving given the per-unit value of saved server bandwidth
// serverBandwidthValue (c_c), the bandwidth reduction reduction (B_r), the
// per-unit supernode reward rewardPerUnit (c_s), and the total supernode
// bandwidth contribution contributed (B_s).
func ProviderSaving(serverBandwidthValue, reduction, rewardPerUnit, contributed float64) float64 {
	return serverBandwidthValue*reduction - rewardPerUnit*contributed
}

// DeploymentGain returns G_s(j) = c_c*(ν*R − Λ) − c_s*c_j*u_j (Eq. 6): the
// provider's gain from deploying one more supernode that newly covers
// newPlayers (ν) players. Deploying is worthwhile when the gain is
// positive.
func DeploymentGain(serverBandwidthValue float64, newPlayers int, streamRate, updateRate, rewardPerUnit, capacity, utilization float64) float64 {
	return serverBandwidthValue*(float64(newPlayers)*streamRate-updateRate) -
		rewardPerUnit*capacity*utilization
}

// SupernodeEconomics is one row of the Fig. 16(a) analysis.
type SupernodeEconomics struct {
	// HoursPerDay is how long the supernode runs daily.
	HoursPerDay float64
	// RewardUSD is the daily reward earned from contributed bandwidth.
	RewardUSD float64
	// CostUSD is the daily electricity cost of running the machine.
	CostUSD float64
	// ProfitUSD is RewardUSD − CostUSD.
	ProfitUSD float64
}

// SupernodeDailyEconomics computes Fig. 16(a): daily rewards, costs and
// profits of a contributed supernode running hoursPerDay with the given
// upload rate (in GB/hour of actually contributed bandwidth).
func SupernodeDailyEconomics(hoursPerDay, uploadGBPerHour float64) SupernodeEconomics {
	if hoursPerDay < 0 {
		hoursPerDay = 0
	}
	if hoursPerDay > 24 {
		hoursPerDay = 24
	}
	reward := RewardUSDPerGB * uploadGBPerHour * hoursPerDay
	cost := ServerPowerKW * ElectricityUSDPerKWh * hoursPerDay
	return SupernodeEconomics{
		HoursPerDay: hoursPerDay,
		RewardUSD:   reward,
		CostUSD:     cost,
		ProfitUSD:   reward - cost,
	}
}

// ProviderEconomics is one row of the Fig. 16(b) analysis.
type ProviderEconomics struct {
	// Hours is the rental / operation duration.
	Hours float64
	// RentingFeeUSD is the cost of renting an EC2 GPU instance instead.
	RentingFeeUSD float64
	// RewardToSupernodeUSD is the cost of rewarding an equivalent
	// supernode for the same duration.
	RewardToSupernodeUSD float64
	// SavingUSD is RentingFeeUSD − RewardToSupernodeUSD.
	SavingUSD float64
}

// ProviderSavings computes Fig. 16(b): what the provider saves by rewarding
// a contributed supernode (uploading uploadGBPerHour) instead of renting an
// EC2 g2.8xlarge for the same hours.
func ProviderSavings(hours, uploadGBPerHour float64) ProviderEconomics {
	if hours < 0 {
		hours = 0
	}
	rent := EC2GPUInstanceUSDPerHour * hours
	reward := RewardUSDPerGB * uploadGBPerHour * hours
	return ProviderEconomics{
		Hours:                hours,
		RentingFeeUSD:        rent,
		RewardToSupernodeUSD: reward,
		SavingUSD:            rent - reward,
	}
}

// AnnualSupernodeFleetCostUSD returns the provider's yearly reward bill for
// a fleet of count supernodes running hoursPerDay every day at
// uploadGBPerHour — the paper's "3,000 supernodes, 24 h/day, ~2.9 M$/year"
// style estimate (with its $1/GB reward and ~0.11 GB/h effective upload).
func AnnualSupernodeFleetCostUSD(count int, hoursPerDay, uploadGBPerHour float64) float64 {
	daily := RewardUSDPerGB * uploadGBPerHour * hoursPerDay * float64(count)
	return daily * 365
}
