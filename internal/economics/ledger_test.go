package economics

import (
	"testing"
	"testing/quick"
)

func TestNewLedgerDefaults(t *testing.T) {
	l := NewLedger(0, 0)
	if l.RewardPerGB != RewardUSDPerGB || l.SignupBonusUSD != DefaultSignupBonusUSD {
		t.Errorf("defaults: %+v", l)
	}
	l = NewLedger(2.5, 1)
	if l.RewardPerGB != 2.5 || l.SignupBonusUSD != 1 {
		t.Error("explicit values lost")
	}
}

func TestContributionCredits(t *testing.T) {
	l := NewLedger(1, 2)
	l.RecordContribution(7, 3.5)
	l.RecordContribution(7, 1.5)
	if got := l.Balance(7); got != 5 {
		t.Errorf("balance = %v", got)
	}
	l.RecordContribution(7, -4) // ignored
	l.RecordContribution(7, 0)  // ignored
	if got := l.Balance(7); got != 5 {
		t.Errorf("balance after bad contributions = %v", got)
	}
	if l.Balance(99) != 0 {
		t.Error("unknown account has balance")
	}
}

func TestMonthlyBonus(t *testing.T) {
	l := NewLedger(1, 2)
	l.Register(1)
	l.Register(2)
	l.AccrueMonthlyBonus()
	l.AccrueMonthlyBonus()
	if l.Balance(1) != 4 || l.Balance(2) != 4 {
		t.Errorf("bonus balances: %v %v", l.Balance(1), l.Balance(2))
	}
	accounts := l.Accounts()
	if len(accounts) != 2 || accounts[0].BonusMonths != 2 {
		t.Errorf("accounts: %+v", accounts)
	}
}

func TestPayOut(t *testing.T) {
	l := NewLedger(1, 2)
	l.RecordContribution(3, 10)
	if paid := l.PayOut(3, 4); paid != 4 {
		t.Errorf("partial payout = %v", paid)
	}
	if l.Balance(3) != 6 {
		t.Errorf("balance after partial = %v", l.Balance(3))
	}
	if paid := l.PayOut(3, 100); paid != 6 {
		t.Errorf("full payout = %v", paid)
	}
	if l.Balance(3) != 0 {
		t.Error("balance not settled")
	}
	if paid := l.PayOut(3, 10); paid != 0 {
		t.Errorf("settled account paid %v", paid)
	}
	if paid := l.PayOut(99, 10); paid != 0 {
		t.Errorf("unknown account paid %v", paid)
	}
	if paid := l.PayOut(3, -1); paid != 0 {
		t.Errorf("negative max paid %v", paid)
	}
	a := l.Accounts()[0]
	if a.PaidUSD != 10 {
		t.Errorf("PaidUSD = %v", a.PaidUSD)
	}
}

func TestTotalLiability(t *testing.T) {
	l := NewLedger(1, 2)
	l.RecordContribution(1, 2)
	l.RecordContribution(2, 3)
	l.AccrueMonthlyBonus()
	if got := l.TotalLiabilityUSD(); got != 2+3+2+2 {
		t.Errorf("liability = %v", got)
	}
	if l.String() == "" {
		t.Error("empty String")
	}
}

func TestAccountsSorted(t *testing.T) {
	l := NewLedger(1, 2)
	for _, id := range []int{9, 2, 5} {
		l.Register(id)
	}
	accounts := l.Accounts()
	for i := 1; i < len(accounts); i++ {
		if accounts[i].SupernodeID <= accounts[i-1].SupernodeID {
			t.Fatal("accounts not sorted")
		}
	}
	// Accounts returns copies: mutating them must not touch the ledger.
	accounts[0].CreditsUSD = 1e9
	if l.Balance(accounts[0].SupernodeID) == 1e9 {
		t.Error("Accounts exposes internal state")
	}
}

func TestLedgerConservationProperty(t *testing.T) {
	// Property: credits earned == balance + paid out, always.
	f := func(contribs []uint8, payouts []uint8) bool {
		l := NewLedger(1, 0)
		var earned float64
		for _, c := range contribs {
			gb := float64(c) / 10
			l.RecordContribution(1, gb)
			if gb > 0 {
				earned += gb
			}
		}
		var paid float64
		for _, p := range payouts {
			paid += l.PayOut(1, float64(p)/10)
		}
		diff := earned - (l.Balance(1) + paid)
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
