package economics

import (
	"fmt"
	"sort"
)

// Ledger tracks the reward credits the game service provider owes its
// supernode contributors, implementing the incentive mechanism of §3.1.1:
// contributors earn a small monthly sign-up bonus for keeping a machine
// registered, plus per-gigabyte credits for the upload bandwidth actually
// contributed. Rewards "can be in the form of real money or virtual money
// for online games"; the ledger is denominated in USD-equivalent credits.
type Ledger struct {
	// SignupBonusUSD is the monthly credit for staying registered.
	SignupBonusUSD float64
	// RewardPerGB is c_s, the per-gigabyte bandwidth reward.
	RewardPerGB float64

	accounts map[int]*Account
}

// Account is one contributor's running balance.
type Account struct {
	// SupernodeID identifies the contributed machine.
	SupernodeID int
	// ContributedGB is the total upload contributed.
	ContributedGB float64
	// BonusMonths counts accrued sign-up bonuses.
	BonusMonths int
	// CreditsUSD is the balance owed.
	CreditsUSD float64
	// PaidUSD is the total already paid out.
	PaidUSD float64
}

// DefaultSignupBonusUSD is the monthly registration bonus: a token amount
// next to bandwidth rewards, per the paper ("a small amount of monthly
// sign up bonus").
const DefaultSignupBonusUSD = 2.0

// NewLedger creates a ledger with the given parameters; non-positive
// values take the paper's defaults ($1/GB, $2/month).
func NewLedger(rewardPerGB, signupBonusUSD float64) *Ledger {
	if rewardPerGB <= 0 {
		rewardPerGB = RewardUSDPerGB
	}
	if signupBonusUSD <= 0 {
		signupBonusUSD = DefaultSignupBonusUSD
	}
	return &Ledger{
		SignupBonusUSD: signupBonusUSD,
		RewardPerGB:    rewardPerGB,
		accounts:       make(map[int]*Account),
	}
}

// account returns (creating if needed) the contributor's account.
func (l *Ledger) account(supernodeID int) *Account {
	a, ok := l.accounts[supernodeID]
	if !ok {
		a = &Account{SupernodeID: supernodeID}
		l.accounts[supernodeID] = a
	}
	return a
}

// RecordContribution credits gb gigabytes of contributed upload.
// Non-positive contributions are ignored.
func (l *Ledger) RecordContribution(supernodeID int, gb float64) {
	if gb <= 0 {
		return
	}
	a := l.account(supernodeID)
	a.ContributedGB += gb
	a.CreditsUSD += gb * l.RewardPerGB
}

// AccrueMonthlyBonus credits the sign-up bonus to every registered account
// (call once per billing month).
func (l *Ledger) AccrueMonthlyBonus() {
	for _, a := range l.accounts {
		a.BonusMonths++
		a.CreditsUSD += l.SignupBonusUSD
	}
}

// Register ensures the contributor has an account (so it receives the
// monthly bonus even before contributing bandwidth).
func (l *Ledger) Register(supernodeID int) { l.account(supernodeID) }

// Balance returns the credits currently owed to the contributor.
func (l *Ledger) Balance(supernodeID int) float64 {
	if a, ok := l.accounts[supernodeID]; ok {
		return a.CreditsUSD
	}
	return 0
}

// PayOut settles up to maxUSD of the contributor's balance and returns the
// amount paid.
func (l *Ledger) PayOut(supernodeID int, maxUSD float64) float64 {
	a, ok := l.accounts[supernodeID]
	if !ok || maxUSD <= 0 {
		return 0
	}
	paid := a.CreditsUSD
	if paid > maxUSD {
		paid = maxUSD
	}
	a.CreditsUSD -= paid
	a.PaidUSD += paid
	return paid
}

// TotalLiabilityUSD returns the provider's total outstanding credits — the
// number Eq. 3 weighs against the saved server bandwidth.
func (l *Ledger) TotalLiabilityUSD() float64 {
	var sum float64
	for _, a := range l.accounts {
		sum += a.CreditsUSD
	}
	return sum
}

// Accounts returns copies of all accounts, sorted by supernode ID.
func (l *Ledger) Accounts() []Account {
	out := make([]Account, 0, len(l.accounts))
	for _, a := range l.accounts {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SupernodeID < out[j].SupernodeID })
	return out
}

// String summarizes the ledger.
func (l *Ledger) String() string {
	return fmt.Sprintf("ledger{accounts=%d liability=$%.2f}", len(l.accounts), l.TotalLiabilityUSD())
}
