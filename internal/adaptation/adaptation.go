// Package adaptation implements the receiver-driven encoding rate
// adaptation strategy of §3.3 of the CloudFog paper.
//
// The player buffers received video segments; the controller estimates the
// buffered amount (Eq. 8), converts it to a segment count r (Eq. 9), and
// adjusts the encoding bitrate one Table 2 quality level at a time:
//
//	adjust UP   when r > (1 + beta) / rho      (Eq. 10, rho-scaled)
//	adjust DOWN when r < theta / rho           (Eq. 12, rho-scaled)
//
// where beta = max_i (b_{q_{i+1}} - b_{q_i}) / b_{q_i} (Eq. 11) guarantees
// the buffered amount already covers the next level's larger segments,
// theta <= 1 is the adjust-down threshold, and rho in (0, 1] is the game's
// latency tolerance degree — latency-sensitive games (small rho) get a
// HIGHER up-switch bar and a HIGHER down-switch bar, so they shed quality
// earlier and regain it more cautiously.
//
// To prevent bitrate oscillation, an adjustment triggers only after
// Debounce consecutive estimates agree (the paper: "the client can conduct
// the calculations of r for a number of times consecutively").
package adaptation

import (
	"fmt"

	"cloudfog/internal/game"
)

// DefaultTheta is the adjust-down threshold θ used in the paper's
// experiments.
const DefaultTheta = 0.5

// DefaultDebounce is the number of consecutive agreeing estimates required
// before the bitrate changes.
const DefaultDebounce = 3

// DefaultLossDownThreshold is the datagram loss fraction above which the
// controller treats the link as congested. TCP transport hides loss as
// retransmit delay (it surfaces through the buffer model); the unreliable
// datagram transport reports it explicitly via NoteLoss.
const DefaultLossDownThreshold = 0.05

// MaxBufferSegments bounds the playback buffer: the receiver stops
// prefetching once this many segments are queued.
const MaxBufferSegments = 10.0

// Beta computes the adjust-up factor β of Eq. 11 over the Table 2 ladder:
// the largest relative bitrate step between adjacent quality levels.
func Beta() float64 {
	ladder := game.Ladder()
	var beta float64
	for i := 0; i+1 < len(ladder); i++ {
		step := (ladder[i+1].BitrateKbps - ladder[i].BitrateKbps) / ladder[i].BitrateKbps
		if step > beta {
			beta = step
		}
	}
	return beta
}

// Config parameterizes a Controller.
type Config struct {
	// Theta is the adjust-down threshold (0 < Theta <= 1). Defaults to
	// DefaultTheta.
	Theta float64
	// Rho is the game's latency tolerance degree in (0, 1]. Defaults to 1.
	Rho float64
	// Debounce is the number of consecutive agreeing estimates required to
	// switch. Defaults to DefaultDebounce.
	Debounce int
	// MaxLevel caps the quality at the game's default level (a game never
	// streams above its own default quality). Defaults to the top rung.
	MaxLevel game.QualityLevel
	// Disabled pins the bitrate to MaxLevel, modeling the paper's opt-out
	// ("users can also disable the encoding rate adaptation strategy").
	Disabled bool
	// SegmentSec is the segment duration τ. Defaults to
	// game.SegmentDurationSec.
	SegmentSec float64
	// LossDownThreshold is the datagram loss fraction (reported via
	// NoteLoss) at which the controller refuses up-switches and treats
	// the window as down-pressure regardless of the buffer estimate.
	// Defaults to DefaultLossDownThreshold.
	LossDownThreshold float64
}

func (c Config) withDefaults() Config {
	if c.Theta <= 0 || c.Theta > 1 {
		c.Theta = DefaultTheta
	}
	if c.Rho <= 0 || c.Rho > 1 {
		c.Rho = 1
	}
	if c.Debounce <= 0 {
		c.Debounce = DefaultDebounce
	}
	if c.MaxLevel < 1 || c.MaxLevel > game.NumQualityLevels {
		c.MaxLevel = game.NumQualityLevels
	}
	if c.SegmentSec <= 0 {
		c.SegmentSec = game.SegmentDurationSec
	}
	if c.LossDownThreshold <= 0 || c.LossDownThreshold > 1 {
		c.LossDownThreshold = DefaultLossDownThreshold
	}
	return c
}

// Decision reports what a controller step decided.
type Decision int

const (
	// Hold keeps the current encoding level.
	Hold Decision = iota + 1
	// Up raises the encoding level by one rung.
	Up
	// Down lowers the encoding level by one rung.
	Down
)

// String returns the decision name.
func (d Decision) String() string {
	switch d {
	case Hold:
		return "hold"
	case Up:
		return "up"
	case Down:
		return "down"
	default:
		return "unknown"
	}
}

// Controller is the receiver-driven rate controller for one player session.
type Controller struct {
	cfg   Config
	beta  float64
	level game.QualityLevel

	bufferedSec float64 // buffered video, in seconds of playback
	lastTimeSec float64

	upStreak   int
	downStreak int

	// lastLoss is the most recent datagram loss fraction reported via
	// NoteLoss; zero on the (lossless by construction) TCP transport.
	lastLoss float64

	switches int
}

// NewController creates a controller starting at the given level (clamped
// to [1, cfg.MaxLevel]).
func NewController(cfg Config, startLevel game.QualityLevel) *Controller {
	c := &Controller{}
	c.Reset(cfg, startLevel)
	return c
}

// Reset reinitializes c in place to the state NewController would build,
// discarding all history. It lets callers keep controllers in a dense value
// slice (one per player slot) and restart them per session without
// allocating.
func (c *Controller) Reset(cfg Config, startLevel game.QualityLevel) {
	cfg = cfg.withDefaults()
	if startLevel < 1 {
		startLevel = 1
	}
	if startLevel > cfg.MaxLevel {
		startLevel = cfg.MaxLevel
	}
	*c = Controller{cfg: cfg, beta: Beta(), level: startLevel}
}

// Level returns the current encoding quality level.
func (c *Controller) Level() game.QualityLevel { return c.level }

// BitrateKbps returns the current encoding bitrate.
func (c *Controller) BitrateKbps() float64 {
	return game.MustQuality(c.level).BitrateKbps
}

// BufferedSegments returns r, the number of whole segments currently
// buffered (Eq. 9).
func (c *Controller) BufferedSegments() float64 {
	return c.bufferedSec / c.cfg.SegmentSec
}

// Switches returns how many bitrate changes the controller has made.
func (c *Controller) Switches() int { return c.switches }

// NoteLoss records the datagram loss fraction observed over the most
// recent measurement window (0..1). It sticks until the next call, so a
// receiver reporting once per window keeps the controller's view current.
// Loss at or above LossDownThreshold vetoes up-switches and converts the
// window into down-pressure: on an unreliable transport a drained buffer
// is not the first symptom of congestion — missing sequence numbers are.
func (c *Controller) NoteLoss(fraction float64) {
	if fraction < 0 {
		fraction = 0
	}
	if fraction > 1 {
		fraction = 1
	}
	c.lastLoss = fraction
}

// Lossy reports whether the last NoteLoss crossed the down threshold.
func (c *Controller) Lossy() bool {
	return c.lastLoss >= c.cfg.LossDownThreshold
}

// UpThreshold returns the rho-scaled up-switch bar (1+β)/ρ.
func (c *Controller) UpThreshold() float64 { return (1 + c.beta) / c.cfg.Rho }

// DownThreshold returns the rho-scaled down-switch bar θ/ρ.
func (c *Controller) DownThreshold() float64 { return c.cfg.Theta / c.cfg.Rho }

// Observe advances the buffer estimate to time nowSec given the current
// downloading rate (kbps actually delivered to the player) and returns the
// resulting decision. The playback rate is the current encoding bitrate:
// the player consumes exactly what the supernode encodes.
//
// This is Eq. 8: s(t_k) = s(t_{k-1}) + (t_k - t_{k-1})(d(t_k) - b_p(t_k)),
// tracked in seconds of playback rather than bits so r falls out directly.
func (c *Controller) Observe(nowSec, downloadKbps float64) Decision {
	dt := nowSec - c.lastTimeSec
	if dt < 0 {
		dt = 0
	}
	c.lastTimeSec = nowSec

	playKbps := c.BitrateKbps()
	// Net buffered seconds gained: downloaded playback-seconds minus
	// consumed wall-clock seconds. The buffer is bounded: receivers stop
	// prefetching past MaxBufferSegments.
	c.bufferedSec += dt * (downloadKbps/playKbps - 1)
	if c.bufferedSec < 0 {
		c.bufferedSec = 0
	}
	if maxSec := MaxBufferSegments * c.cfg.SegmentSec; c.bufferedSec > maxSec {
		c.bufferedSec = maxSec
	}

	if c.cfg.Disabled {
		return Hold
	}

	r := c.BufferedSegments()
	// An up-switch additionally requires the observed download rate to
	// sustain the next rung — otherwise a slowly-built buffer would flip
	// quality up only to drain it again (oscillation), which the paper's
	// consecutive-estimate rule aims to prevent.
	canSustainNext := c.level >= c.cfg.MaxLevel ||
		downloadKbps >= game.MustQuality(c.level+1).BitrateKbps
	lossy := c.Lossy()
	switch {
	case r > c.UpThreshold() && c.level < c.cfg.MaxLevel && canSustainNext && !lossy:
		c.upStreak++
		c.downStreak = 0
		if c.upStreak >= c.cfg.Debounce {
			c.upStreak = 0
			c.level++
			c.switches++
			return Up
		}
	case (r < c.DownThreshold() || lossy) && c.level > 1:
		c.downStreak++
		c.upStreak = 0
		if c.downStreak >= c.cfg.Debounce {
			c.downStreak = 0
			c.level--
			c.switches++
			return Down
		}
	default:
		c.upStreak = 0
		c.downStreak = 0
	}
	return Hold
}

// Stalled reports whether playback has drained the buffer to (near) empty,
// i.e. the player is rebuffering.
func (c *Controller) Stalled() bool { return c.bufferedSec < 1e-9 }

// String renders the controller state for debugging.
func (c *Controller) String() string {
	return fmt.Sprintf("adaptation{level=%d buffered=%.2fs switches=%d}",
		c.level, c.bufferedSec, c.switches)
}
