package adaptation

import (
	"testing"
	"testing/quick"

	"cloudfog/internal/game"
)

func TestBeta(t *testing.T) {
	// Largest relative step of the Table 2 ladder: 300->500 is +66.7%.
	beta := Beta()
	if beta < 0.66 || beta > 0.67 {
		t.Errorf("Beta = %v, want ~2/3", beta)
	}
}

func TestNewControllerClamps(t *testing.T) {
	c := NewController(Config{}, 99)
	if c.Level() != game.NumQualityLevels {
		t.Errorf("start level clamped to %d", c.Level())
	}
	c = NewController(Config{MaxLevel: 3}, 5)
	if c.Level() != 3 {
		t.Errorf("start level above MaxLevel: %d", c.Level())
	}
	c = NewController(Config{}, 0)
	if c.Level() != 1 {
		t.Errorf("start level below 1: %d", c.Level())
	}
}

func TestThresholds(t *testing.T) {
	c := NewController(Config{Theta: 0.5, Rho: 1}, 3)
	if got, want := c.DownThreshold(), 0.5; got != want {
		t.Errorf("DownThreshold = %v", got)
	}
	if got, want := c.UpThreshold(), 1+Beta(); got != want {
		t.Errorf("UpThreshold = %v, want %v", got, want)
	}
	// Latency-sensitive game (rho = 0.5): both bars double.
	cs := NewController(Config{Theta: 0.5, Rho: 0.5}, 3)
	if cs.UpThreshold() != 2*c.UpThreshold() || cs.DownThreshold() != 2*c.DownThreshold() {
		t.Error("rho scaling broken")
	}
}

func TestAdjustDownUnderStarvation(t *testing.T) {
	c := NewController(Config{Debounce: 3}, 5)
	// Delivering half the playback rate drains the buffer; after the
	// debounce the controller must step down.
	downs := 0
	now := 0.0
	for i := 0; i < 40 && c.Level() > 1; i++ {
		now += 1
		if c.Observe(now, c.BitrateKbps()*0.5) == Down {
			downs++
		}
	}
	if downs == 0 {
		t.Fatal("controller never adjusted down under starvation")
	}
	if c.Level() != 1 {
		t.Errorf("level after sustained starvation = %d, want 1", c.Level())
	}
	if c.Switches() != downs {
		t.Errorf("Switches = %d, want %d", c.Switches(), downs)
	}
}

func TestAdjustUpWithHeadroom(t *testing.T) {
	c := NewController(Config{Debounce: 3}, 1)
	now := 0.0
	ups := 0
	for i := 0; i < 200 && c.Level() < game.NumQualityLevels; i++ {
		now += 1
		// Twice the playback rate: the buffer builds beyond (1+β).
		if c.Observe(now, c.BitrateKbps()*2) == Up {
			ups++
		}
	}
	if c.Level() != game.NumQualityLevels {
		t.Errorf("level after sustained headroom = %d, want %d", c.Level(), game.NumQualityLevels)
	}
	if ups != game.NumQualityLevels-1 {
		t.Errorf("ups = %d", ups)
	}
}

func TestMaxLevelCap(t *testing.T) {
	c := NewController(Config{MaxLevel: 2, Debounce: 1}, 1)
	now := 0.0
	for i := 0; i < 100; i++ {
		now += 1
		c.Observe(now, c.BitrateKbps()*3)
	}
	if c.Level() > 2 {
		t.Errorf("level %d exceeded MaxLevel 2 (the game's default quality)", c.Level())
	}
}

func TestDebouncePreventsSingleSpikeSwitch(t *testing.T) {
	c := NewController(Config{Debounce: 3}, 3)
	now := 1.0
	// Build a normal buffer first.
	for i := 0; i < 3; i++ {
		c.Observe(now, c.BitrateKbps())
		now += 1
	}
	// One starvation observation must not switch.
	if d := c.Observe(now, 0); d != Hold {
		t.Errorf("single spike switched: %v", d)
	}
	now += 1
	// A strong recovery resets the streak; isolated dips separated by
	// recoveries never accumulate to the debounce.
	for i := 0; i < 10; i++ {
		if d := c.Observe(now, c.BitrateKbps()*2.0); d == Down {
			t.Fatalf("recovery observation switched down")
		}
		now += 1
		if d := c.Observe(now, 0); d == Down {
			t.Fatal("isolated dips accumulated across resets")
		}
		now += 1
	}
}

func TestDisabledPinsBitrate(t *testing.T) {
	c := NewController(Config{Disabled: true, Debounce: 1}, 4)
	now := 0.0
	for i := 0; i < 50; i++ {
		now += 1
		if d := c.Observe(now, 0); d != Hold {
			t.Fatalf("disabled controller switched: %v", d)
		}
	}
	if c.Level() != 4 || c.Switches() != 0 {
		t.Errorf("disabled controller moved: level=%d switches=%d", c.Level(), c.Switches())
	}
}

func TestBufferNeverNegativeProperty(t *testing.T) {
	// Property: whatever the delivery pattern, buffered segments >= 0.
	f := func(deliveries []uint8) bool {
		c := NewController(Config{}, 3)
		now := 0.0
		for _, d := range deliveries {
			now += 1
			c.Observe(now, float64(d)*20)
			if c.BufferedSegments() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevelInRangeProperty(t *testing.T) {
	f := func(deliveries []uint16) bool {
		c := NewController(Config{Debounce: 1}, 3)
		now := 0.0
		for _, d := range deliveries {
			now += 1
			c.Observe(now, float64(d))
			if c.Level() < 1 || c.Level() > game.NumQualityLevels {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeGoingBackwardIsIgnored(t *testing.T) {
	c := NewController(Config{}, 3)
	c.Observe(10, 5000)
	before := c.BufferedSegments()
	c.Observe(5, 5000) // dt < 0 must not drain or grow the buffer
	if c.BufferedSegments() != before {
		t.Errorf("backwards time changed buffer: %v -> %v", before, c.BufferedSegments())
	}
}

func TestStalled(t *testing.T) {
	c := NewController(Config{}, 3)
	if !c.Stalled() {
		t.Error("fresh controller (empty buffer) should report stalled")
	}
	c.Observe(1, c.BitrateKbps()*3)
	if c.Stalled() {
		t.Error("buffered controller reports stalled")
	}
}

func TestStringAndDecisionString(t *testing.T) {
	c := NewController(Config{}, 2)
	if c.String() == "" {
		t.Error("empty String")
	}
	if Hold.String() != "hold" || Up.String() != "up" || Down.String() != "down" ||
		Decision(0).String() != "unknown" {
		t.Error("Decision.String mismatch")
	}
}

func TestRhoMakesSensitiveGamesShedEarlier(t *testing.T) {
	// With the same buffer trajectory, a latency-sensitive game (low rho,
	// higher down bar) must switch down no later than a tolerant one.
	run := func(rho float64) int {
		c := NewController(Config{Rho: rho, Debounce: 2}, 3)
		now := 0.0
		// Build ~1.2 segments of buffer, then starve slowly.
		for i := 0; i < 3; i++ {
			now += 1
			c.Observe(now, c.BitrateKbps()*1.4)
		}
		steps := 0
		for i := 0; i < 100; i++ {
			now += 1
			steps++
			if c.Observe(now, c.BitrateKbps()*0.92) == Down {
				return steps
			}
		}
		return steps
	}
	if sensitive, tolerant := run(0.6), run(1.0); sensitive > tolerant {
		t.Errorf("sensitive game switched later (%d) than tolerant (%d)", sensitive, tolerant)
	}
}

func TestLossVetoesUpSwitch(t *testing.T) {
	c := NewController(Config{Debounce: 3}, 1)
	c.NoteLoss(0.1) // above DefaultLossDownThreshold
	now := 0.0
	for i := 0; i < 50; i++ {
		now += 1
		// Plenty of bandwidth: without loss this climbs the ladder.
		if d := c.Observe(now, c.BitrateKbps()*3); d == Up {
			t.Fatalf("up-switch at step %d despite 10%% datagram loss", i)
		}
	}
	if c.Level() != 1 {
		t.Errorf("level = %d, want 1 (loss veto)", c.Level())
	}
}

func TestLossForcesDownThenRecovers(t *testing.T) {
	c := NewController(Config{Debounce: 2}, 5)
	now := 0.0
	// Build a comfortable buffer first so the down-pressure is loss-driven,
	// not starvation-driven.
	for i := 0; i < 20; i++ {
		now += 1
		c.Observe(now, c.BitrateKbps()*2)
	}
	c.NoteLoss(0.2)
	for i := 0; i < 10 && c.Level() > 3; i++ {
		now += 1
		c.Observe(now, c.BitrateKbps())
	}
	if c.Level() >= 5 {
		t.Fatalf("level = %d, want a down-step under 20%% loss", c.Level())
	}
	if !c.Lossy() {
		t.Error("Lossy() = false at 20% loss")
	}
	// Healed link: loss clears, headroom climbs the ladder again.
	c.NoteLoss(0)
	for i := 0; i < 200 && c.Level() < 5; i++ {
		now += 1
		c.Observe(now, c.BitrateKbps()*3)
	}
	if c.Level() != 5 {
		t.Errorf("level = %d after heal, want 5", c.Level())
	}
}
