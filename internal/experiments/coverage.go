package experiments

import (
	"fmt"

	"cloudfog/internal/core"
)

// latencyRequirements are the network response-latency thresholds swept by
// Fig. 4 and Fig. 5 (the latency requirements of the Table 2 game genres).
var latencyRequirements = []float64{30, 50, 70, 90, 110}

// Fig4a reproduces Fig. 4(a): user coverage vs. number of datacenters on
// the PeerSim profile, one series per latency requirement.
func Fig4a(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	opts.Profile = ProfilePeerSim
	return coverageVsDatacenters(opts, "fig4a", []int{1, 5, 10, 15, 20, 25})
}

// Fig5a reproduces Fig. 5(a): user coverage vs. number of datacenters on
// the PlanetLab profile.
func Fig5a(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	opts.Profile = ProfilePlanetLab
	return coverageVsDatacenters(opts, "fig5a", []int{1, 2, 4, 8, 12, 16})
}

// Fig4b reproduces Fig. 4(b): user coverage vs. number of supernodes on
// the PeerSim profile (the default datacenters remain available).
func Fig4b(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	opts.Profile = ProfilePeerSim
	return coverageVsSupernodes(opts, "fig4b", []int{0, 50, 100, 200, 400, 600, 800, 1000})
}

// Fig5b reproduces Fig. 5(b): user coverage vs. number of supernodes on
// the PlanetLab profile.
func Fig5b(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	opts.Profile = ProfilePlanetLab
	return coverageVsSupernodes(opts, "fig5b", []int{0, 10, 20, 40, 60, 80, 100})
}

func coverageVsDatacenters(opts Options, id string, datacenters []int) (*Figure, error) {
	cfg, _, _ := opts.baseConfig()
	study, err := core.NewCoverageStudy(cfg)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     id,
		Title:  "user coverage vs number of datacenters",
		XLabel: "#datacenters",
		YLabel: "ratio of covered players",
	}
	for _, req := range latencyRequirements {
		fig.Series = append(fig.Series, Series{Label: fmt.Sprintf("%.0f ms", req)})
	}
	for _, nd := range datacenters {
		cov := study.CoverageVsDatacenters(nd, latencyRequirements)
		for i := range latencyRequirements {
			fig.Series[i].X = append(fig.Series[i].X, float64(nd))
			fig.Series[i].Y = append(fig.Series[i].Y, cov[i])
		}
	}
	return fig, nil
}

func coverageVsSupernodes(opts Options, id string, supernodes []int) (*Figure, error) {
	cfg, _, _ := opts.baseConfig()
	study, err := core.NewCoverageStudy(cfg)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     id,
		Title:  "user coverage vs number of supernodes",
		XLabel: "#supernodes",
		YLabel: "ratio of covered players",
	}
	for _, req := range latencyRequirements {
		fig.Series = append(fig.Series, Series{Label: fmt.Sprintf("%.0f ms", req)})
	}
	for _, ns := range supernodes {
		cov := study.CoverageVsSupernodes(ns, latencyRequirements)
		for i := range latencyRequirements {
			fig.Series[i].X = append(fig.Series[i].X, float64(ns))
			fig.Series[i].Y = append(fig.Series[i].Y, cov[i])
		}
	}
	return fig, nil
}
