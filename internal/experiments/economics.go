package experiments

import (
	"fmt"

	"cloudfog/internal/economics"
	"cloudfog/internal/game"
)

// supernodeUploadGBPerHour is the effective upload of a contributed
// supernode serving a handful of ~1 Mbps streams with realistic idle time,
// used by the Fig. 16 analyses. 10 concurrent 1 Mbps streams at 30%
// utilization ≈ 1.35 GB/h; the paper's "2.9 M$/year for 3,000 supernodes"
// figure implies a comparable effective rate.
const supernodeUploadGBPerHour = 0.11 * 12

// Fig16a reproduces Fig. 16(a): a supernode contributor's daily rewards,
// electricity costs, and profits as a function of how many hours per day
// the machine runs.
func Fig16a(opts Options) (*Figure, error) {
	fig := &Figure{
		ID: "fig16a", Title: "rewards, costs and profits for supernode contributors",
		XLabel: "hours/day", YLabel: "dollars/day",
	}
	rewards := Series{Label: "Rewards"}
	costs := Series{Label: "Costs"}
	profits := Series{Label: "Profits"}
	for h := 2.0; h <= 24; h += 2 {
		e := economics.SupernodeDailyEconomics(h, supernodeUploadGBPerHour)
		rewards.X, rewards.Y = append(rewards.X, h), append(rewards.Y, e.RewardUSD)
		costs.X, costs.Y = append(costs.X, h), append(costs.Y, e.CostUSD)
		profits.X, profits.Y = append(profits.X, h), append(profits.Y, e.ProfitUSD)
	}
	fig.Series = []Series{rewards, costs, profits}
	return fig, nil
}

// Fig16b reproduces Fig. 16(b): the game service provider's renting fee
// for an EC2 GPU instance, the reward paid to an equivalent supernode, and
// the resulting saving, vs rental hours.
func Fig16b(opts Options) (*Figure, error) {
	fig := &Figure{
		ID: "fig16b", Title: "renting fees and savings for a game service provider",
		XLabel: "hours", YLabel: "dollars",
	}
	renting := Series{Label: "Renting fees"}
	rewards := Series{Label: "Rewards to SNs"}
	savings := Series{Label: "Savings"}
	for h := 20.0; h <= 200; h += 20 {
		e := economics.ProviderSavings(h, supernodeUploadGBPerHour)
		renting.X, renting.Y = append(renting.X, h), append(renting.Y, e.RentingFeeUSD)
		rewards.X, rewards.Y = append(rewards.X, h), append(rewards.Y, e.RewardToSupernodeUSD)
		savings.X, savings.Y = append(savings.X, h), append(savings.Y, e.SavingUSD)
	}
	fig.Series = []Series{renting, rewards, savings}
	return fig, nil
}

// Table2 reproduces Table 2: the video quality ladder (resolution, bitrate,
// latency requirement, latency tolerance degree per quality level).
func Table2() *Figure {
	fig := &Figure{
		ID: "table2", Title: "video parameters for different quality levels",
		XLabel: "quality level", YLabel: "see series",
	}
	bitrate := Series{Label: "bitrate kbps"}
	latency := Series{Label: "latency req ms"}
	tolerance := Series{Label: "tolerance"}
	for _, q := range game.Ladder() {
		x := float64(q.Level)
		bitrate.X, bitrate.Y = append(bitrate.X, x), append(bitrate.Y, q.BitrateKbps)
		latency.X, latency.Y = append(latency.X, x), append(latency.Y, q.LatencyRequirementMs)
		tolerance.X, tolerance.Y = append(tolerance.X, x), append(tolerance.Y, q.ToleranceDegree)
	}
	fig.Series = []Series{bitrate, latency, tolerance}
	return fig
}

// fleetEffectiveGBPerHour is the long-run average upload per supernode the
// paper's §4.4 fleet estimate implies (~2.9 M$/year for 3,000 machines at
// $1/GB): most hours are off-peak, so the 24 h average sits far below the
// busy-hour rate.
const fleetEffectiveGBPerHour = 0.11

// AnnualFleetCost prints the paper's §4.4 fleet estimate: the yearly reward
// bill of a 3,000-supernode fleet running around the clock, against the
// cost of building one medium datacenter.
func AnnualFleetCost() string {
	fleet := economics.AnnualSupernodeFleetCostUSD(3000, 24, fleetEffectiveGBPerHour)
	return fmt.Sprintf("3000 supernodes, 24h/day: $%.1fM/year vs $%.0fM for one medium datacenter",
		fleet/1e6, economics.MediumDatacenterUSD/1e6)
}
