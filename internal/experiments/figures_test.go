package experiments

import (
	"testing"
)

// tinyOpts keeps figure integration tests fast; these tests check shape
// invariants the paper reports, not absolute values.
func tinyOpts() Options { return Options{Scale: ScaleQuick, Seed: 1} }

func first(s Series) float64 { return s.Y[0] }
func last(s Series) float64  { return s.Y[len(s.Y)-1] }

func seriesByLabel(t *testing.T, fig *Figure, label string) Series {
	t.Helper()
	for _, s := range fig.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("figure %s has no series %q", fig.ID, label)
	return Series{}
}

func TestFig4aShape(t *testing.T) {
	fig, err := Fig4a(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		// Coverage grows (weakly) with datacenters.
		if last(s) < first(s)-1e-9 {
			t.Errorf("coverage fell with more datacenters for %s", s.Label)
		}
		for _, y := range s.Y {
			if y < 0 || y > 1 {
				t.Fatalf("coverage out of range: %v", y)
			}
		}
	}
	// Stricter requirement => lower coverage at every x.
	strict := seriesByLabel(t, fig, "30 ms")
	loose := seriesByLabel(t, fig, "110 ms")
	for i := range strict.Y {
		if strict.Y[i] > loose.Y[i]+1e-9 {
			t.Errorf("30ms coverage above 110ms at x=%v", strict.X[i])
		}
	}
}

func TestFig4bShape(t *testing.T) {
	fig, err := Fig4b(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if last(s) < first(s)-1e-9 {
			t.Errorf("coverage fell with more supernodes for %s", s.Label)
		}
	}
	// Supernodes must add substantial coverage at mid requirements: the
	// paper's headline (supernodes vs building datacenters).
	mid := seriesByLabel(t, fig, "50 ms")
	if last(mid)-first(mid) < 0.2 {
		t.Errorf("supernodes added only %v coverage at 50 ms", last(mid)-first(mid))
	}
}

func TestFig5Shapes(t *testing.T) {
	figA, err := Fig5a(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	figB, err := Fig5b(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []*Figure{figA, figB} {
		for _, s := range fig.Series {
			if last(s) < first(s)-1e-9 {
				t.Errorf("%s: coverage fell for %s", fig.ID, s.Label)
			}
		}
	}
}

func TestSystemComparisonShapes(t *testing.T) {
	bw, lat, cont, err := SystemComparison(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Fig 6: bandwidth ordering Cloud > CDN > CloudFog at the top player
	// count.
	cloud := seriesByLabel(t, bw, "Cloud")
	cdn := seriesByLabel(t, bw, "CDN")
	fogB := seriesByLabel(t, bw, "CloudFog/B")
	if !(last(cloud) > last(cdn) && last(cdn) > last(fogB)) {
		t.Errorf("fig6 ordering broken: Cloud=%v CDN=%v CloudFog=%v",
			last(cloud), last(cdn), last(fogB))
	}
	// Cloud bandwidth grows with players.
	if last(cloud) <= first(cloud) {
		t.Error("cloud bandwidth does not grow with players")
	}

	// Fig 7: latency ordering Cloud > CDN > CloudFog/B > CloudFog/A.
	lCloud := seriesByLabel(t, lat, "Cloud")
	lCDN := seriesByLabel(t, lat, "CDN")
	lFogB := seriesByLabel(t, lat, "CloudFog/B")
	lFogA := seriesByLabel(t, lat, "CloudFog/A")
	for i := range lCloud.Y {
		if !(lCloud.Y[i] > lCDN.Y[i] && lCDN.Y[i] > lFogB.Y[i] && lFogB.Y[i] > lFogA.Y[i]) {
			t.Errorf("fig7 ordering broken at x=%v: %v %v %v %v",
				lCloud.X[i], lCloud.Y[i], lCDN.Y[i], lFogB.Y[i], lFogA.Y[i])
		}
	}

	// Fig 8: continuity ordering Cloud < CDN < CloudFog/B < CloudFog/A.
	cCloud := seriesByLabel(t, cont, "Cloud")
	cCDN := seriesByLabel(t, cont, "CDN")
	cFogB := seriesByLabel(t, cont, "CloudFog/B")
	cFogA := seriesByLabel(t, cont, "CloudFog/A")
	for i := range cCloud.Y {
		if !(cCloud.Y[i] < cCDN.Y[i] && cFogB.Y[i] < cFogA.Y[i]+1e-9) {
			t.Errorf("fig8 ordering broken at x=%v", cCloud.X[i])
		}
	}
	// CloudFog/A delivers high continuity (paper: > 90%; we accept > 75%
	// at quick scale).
	if last(cFogA) < 0.75 {
		t.Errorf("CloudFog/A continuity %v too low", last(cFogA))
	}
	if last(cFogB) < last(cCDN)-0.05 {
		t.Errorf("CloudFog/B continuity %v clearly below CDN %v", last(cFogB), last(cCDN))
	}
}

func TestFig9aShape(t *testing.T) {
	fig, err := Fig9a(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		for i, y := range s.Y {
			if y <= 0 {
				t.Errorf("%s latency not positive at x=%v", s.Label, s.X[i])
			}
		}
	}
	// Join and migration are sub-second operations (paper: ~0.3s join,
	// ~0.8s migration).
	join := seriesByLabel(t, fig, "player join")
	migration := seriesByLabel(t, fig, "migration")
	for i := range join.Y {
		if join.Y[i] > 2000 || migration.Y[i] > 2000 {
			t.Errorf("setup latencies implausibly high at x=%v", join.X[i])
		}
	}
}

func TestFig10Shape(t *testing.T) {
	fig, err := Fig10(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	rep := seriesByLabel(t, fig, "CloudFog-reputation")
	base := seriesByLabel(t, fig, "CloudFog/B")
	// Both decline as per-supernode load grows.
	if last(rep) >= first(rep) || last(base) >= first(base) {
		t.Error("satisfaction does not decline with load")
	}
	// Reputation helps on average over the sweep (individual points may
	// tie within noise).
	var repSum, baseSum float64
	for i := range rep.Y {
		repSum += rep.Y[i]
		baseSum += base.Y[i]
	}
	if repSum <= baseSum {
		t.Errorf("reputation does not help on average: %v vs %v", repSum, baseSum)
	}
}

func TestFig11Shape(t *testing.T) {
	fig, err := Fig11(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	adapt := seriesByLabel(t, fig, "CloudFog-adapt")
	base := seriesByLabel(t, fig, "CloudFog/B")
	wins := 0
	for i := range adapt.Y {
		if adapt.Y[i] > base.Y[i] {
			wins++
		}
	}
	if wins < len(adapt.Y)-1 {
		t.Errorf("adaptation wins only %d of %d load points", wins, len(adapt.Y))
	}
	// The gap grows with load (that is the point of the strategy).
	if adapt.Y[len(adapt.Y)-1]-base.Y[len(base.Y)-1] <= adapt.Y[0]-base.Y[0] {
		t.Log("note: adaptation gap did not widen with load at this scale")
	}
}

func TestFig12Shape(t *testing.T) {
	fig, err := Fig12(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	on := seriesByLabel(t, fig, "server latency w/")
	off := seriesByLabel(t, fig, "server latency w/o")
	for i := range on.Y {
		if on.Y[i] >= off.Y[i] {
			t.Errorf("social assignment did not cut server latency at z=%v: %v vs %v",
				on.X[i], on.Y[i], off.Y[i])
		}
	}
	// The reduction is material (paper: ~20 ms; we require >= 5 ms).
	if off.Y[0]-on.Y[0] < 5 {
		t.Errorf("server latency reduction only %v ms", off.Y[0]-on.Y[0])
	}
}

func TestProvisioningComparisonShapes(t *testing.T) {
	bw, lat, cont, err := ProvisioningComparison(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	prov := seriesByLabel(t, bw, "CloudFog-provision")
	fixed := seriesByLabel(t, bw, "CloudFog/B")
	// The fixed pool's cloud bandwidth grows steeply with arrival rate;
	// provisioning keeps it nearly flat and below the fixed pool at peak.
	if last(fixed) <= first(fixed) {
		t.Error("fixed pool bandwidth does not grow with arrivals")
	}
	if last(prov) >= last(fixed) {
		t.Errorf("provisioning bandwidth %v not below fixed %v at peak", last(prov), last(fixed))
	}
	// Latency and continuity: provisioning better at every rate.
	lProv := seriesByLabel(t, lat, "CloudFog-provision")
	lFixed := seriesByLabel(t, lat, "CloudFog/B")
	cProv := seriesByLabel(t, cont, "CloudFog-provision")
	cFixed := seriesByLabel(t, cont, "CloudFog/B")
	for i := range lProv.Y {
		if lProv.Y[i] >= lFixed.Y[i] {
			t.Errorf("provisioning latency %v not below fixed %v at rate %v",
				lProv.Y[i], lFixed.Y[i], lProv.X[i])
		}
		if cProv.Y[i] <= cFixed.Y[i] {
			t.Errorf("provisioning continuity %v not above fixed %v at rate %v",
				cProv.Y[i], cFixed.Y[i], cProv.X[i])
		}
	}
}
