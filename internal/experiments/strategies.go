package experiments

import (
	"fmt"

	"cloudfog/internal/core"
)

// loadSweepFor returns the "number of supporting players of a supernode"
// axis of Figs. 10 and 11 (coarser at quick scale).
func loadSweepFor(opts Options) []int {
	if opts.Scale == ScaleFull {
		return []int{5, 10, 15, 20, 25, 30}
	}
	return []int{5, 10, 20, 30}
}

// strategyLoadRun runs a CloudFog deployment whose supernodes all have the
// forced capacity `load`, sized so that supernode slots carry the player
// population with modest slack, and returns the satisfied-player fraction.
func strategyLoadRun(opts Options, strategies core.Strategies, load int) (core.Snapshot, error) {
	cfg, cycles, warmup := opts.baseConfig()
	if opts.Scale != ScaleFull {
		// Reputation needs several rated sessions per player before the
		// ranking means anything; extend the quick protocol a little.
		cycles, warmup = 12, 7
	}
	players := 800
	if opts.Scale == ScaleFull {
		players = 6000
	}
	if opts.Profile == ProfilePlanetLab {
		players = 600
	}
	cfg.Players = players
	cfg.AlwaysOn = true
	cfg.Mode = core.ModeCloudFog
	cfg.Strategies = strategies
	cfg.ForcedSupernodeLoad = load
	cfg.Supernodes = players*13/(load*10) + 1 // ~30% slack in slots
	cfg.SupernodeCandidates = cfg.Supernodes
	snap, _, err := runSystem(cfg, cycles, warmup)
	return snap, err
}

// Fig10 reproduces Fig. 10: percentage of satisfied players vs the number
// of supporting players per supernode, with and without reputation-based
// supernode selection.
func Fig10(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	fig := &Figure{
		ID: "fig10", Title: "effect of reputation-based supernode selection",
		XLabel: "players per supernode", YLabel: "satisfied players (fraction)",
	}
	with := Series{Label: "CloudFog-reputation"}
	without := Series{Label: "CloudFog/B"}
	for _, load := range loadSweepFor(opts) {
		sOn, err := strategyLoadRun(opts, core.Strategies{Reputation: true}, load)
		if err != nil {
			return nil, fmt.Errorf("fig10 load=%d reputation: %w", load, err)
		}
		sOff, err := strategyLoadRun(opts, core.Strategies{}, load)
		if err != nil {
			return nil, fmt.Errorf("fig10 load=%d base: %w", load, err)
		}
		with.X = append(with.X, float64(load))
		with.Y = append(with.Y, sOn.SatisfiedFraction)
		without.X = append(without.X, float64(load))
		without.Y = append(without.Y, sOff.SatisfiedFraction)
	}
	fig.Series = []Series{with, without}
	return fig, nil
}

// Fig11 reproduces Fig. 11: percentage of satisfied players vs per-
// supernode load, with and without receiver-driven encoding rate
// adaptation.
func Fig11(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	fig := &Figure{
		ID: "fig11", Title: "effect of receiver-driven encoding rate adaptation",
		XLabel: "players per supernode", YLabel: "satisfied players (fraction)",
	}
	with := Series{Label: "CloudFog-adapt"}
	without := Series{Label: "CloudFog/B"}
	for _, load := range loadSweepFor(opts) {
		sOn, err := strategyLoadRun(opts, core.Strategies{Adaptation: true}, load)
		if err != nil {
			return nil, fmt.Errorf("fig11 load=%d adapt: %w", load, err)
		}
		sOff, err := strategyLoadRun(opts, core.Strategies{}, load)
		if err != nil {
			return nil, fmt.Errorf("fig11 load=%d base: %w", load, err)
		}
		with.X = append(with.X, float64(load))
		with.Y = append(with.Y, sOn.SatisfiedFraction)
		without.X = append(without.X, float64(load))
		without.Y = append(without.Y, sOff.SatisfiedFraction)
	}
	fig.Series = []Series{with, without}
	return fig, nil
}

// Fig12 reproduces Fig. 12: the response-latency decomposition (server
// communication latency vs the rest) for different numbers of servers in a
// datacenter, with and without the social-network-based server assignment.
func Fig12(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	fig := &Figure{
		ID: "fig12", Title: "effect of social-network-based server assignment",
		XLabel: "servers per datacenter", YLabel: "latency (ms)",
	}
	serverCounts := []int{50, 100, 150, 200}
	if opts.Scale != ScaleFull {
		serverCounts = []int{25, 50, 100}
	}
	serverOn := Series{Label: "server latency w/"}
	otherOn := Series{Label: "other latency w/"}
	serverOff := Series{Label: "server latency w/o"}
	otherOff := Series{Label: "other latency w/o"}
	for _, z := range serverCounts {
		run := func(social bool) (core.Snapshot, error) {
			cfg, cycles, warmup := opts.baseConfig()
			cfg.Players = 800
			if opts.Scale == ScaleFull {
				cfg.Players = 6000
			}
			cfg.AlwaysOn = true
			cfg.Datacenters = 1
			cfg.ServersPerDC = z
			cfg.Mode = core.ModeCloudFog
			cfg.Strategies = core.Strategies{SocialAssignment: social}
			snap, _, err := runSystem(cfg, cycles, warmup)
			return snap, err
		}
		on, err := run(true)
		if err != nil {
			return nil, fmt.Errorf("fig12 z=%d w/: %w", z, err)
		}
		off, err := run(false)
		if err != nil {
			return nil, fmt.Errorf("fig12 z=%d w/o: %w", z, err)
		}
		x := float64(z)
		serverOn.X, serverOn.Y = append(serverOn.X, x), append(serverOn.Y, on.MeanServerCommMs)
		otherOn.X, otherOn.Y = append(otherOn.X, x), append(otherOn.Y, on.MeanOtherLatencyMs)
		serverOff.X, serverOff.Y = append(serverOff.X, x), append(serverOff.Y, off.MeanServerCommMs)
		otherOff.X, otherOff.Y = append(otherOff.X, x), append(otherOff.Y, off.MeanOtherLatencyMs)
	}
	fig.Series = []Series{serverOn, otherOn, serverOff, otherOff}
	return fig, nil
}
