package experiments

import (
	"fmt"
)

// setupSeries are the four latencies Fig. 9 reports.
var setupSeries = []string{"server assignment", "supernode join", "player join", "migration"}

// Fig9a reproduces Fig. 9(a): system setup and player join latencies vs the
// number of players on the PeerSim profile. Supernodes scale with players
// (6% of the population, the paper's 600:10,000 ratio); supernode failures
// are injected each measured cycle to exercise migration.
func Fig9a(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	opts.Profile = ProfilePeerSim
	var players []int
	if opts.Scale == ScaleFull {
		players = []int{1000, 2000, 3000, 4000, 5000, 6000}
	} else {
		players = []int{400, 800, 1200}
	}
	fig := &Figure{
		ID: "fig9a", Title: "setup latencies vs number of players",
		XLabel: "#players", YLabel: "latency (ms)",
	}
	for _, label := range setupSeries {
		fig.Series = append(fig.Series, Series{Label: label})
	}
	base, cycles, warmup := opts.baseConfig()
	for _, n := range players {
		cfg := base
		cfg.Players = n
		cfg.Supernodes = n * 6 / 100
		cfg.SupernodeCandidates = n / 10
		cfg.Strategies.SocialAssignment = true
		cfg.Strategies.Provisioning = true
		cfg.FailSupernodesPerCycle = maxI(1, cfg.Supernodes/10)
		snap, _, err := runSystem(cfg, cycles, warmup)
		if err != nil {
			return nil, fmt.Errorf("fig9a players=%d: %w", n, err)
		}
		appendSetupPoint(fig, float64(n), snap.MeanServerAssignMs,
			snap.MeanSupernodeJoinMs, snap.MeanPlayerJoinMs, snap.MeanMigrationMs)
	}
	return fig, nil
}

// Fig9b reproduces Fig. 9(b): setup latencies vs the number of supernodes
// on the PlanetLab profile.
func Fig9b(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	opts.Profile = ProfilePlanetLab
	supernodes := []int{10, 20, 30, 40, 50}
	if opts.Scale != ScaleFull {
		supernodes = []int{10, 25, 40}
	}
	fig := &Figure{
		ID: "fig9b", Title: "setup latencies vs number of supernodes",
		XLabel: "#supernodes", YLabel: "latency (ms)",
	}
	for _, label := range setupSeries {
		fig.Series = append(fig.Series, Series{Label: label})
	}
	base, cycles, warmup := opts.baseConfig()
	for _, ns := range supernodes {
		cfg := base
		cfg.Supernodes = ns
		cfg.SupernodeCandidates = ns * 2
		cfg.Strategies.SocialAssignment = true
		cfg.Strategies.Provisioning = true
		cfg.FailSupernodesPerCycle = maxI(1, ns/10)
		snap, _, err := runSystem(cfg, cycles, warmup)
		if err != nil {
			return nil, fmt.Errorf("fig9b supernodes=%d: %w", ns, err)
		}
		appendSetupPoint(fig, float64(ns), snap.MeanServerAssignMs,
			snap.MeanSupernodeJoinMs, snap.MeanPlayerJoinMs, snap.MeanMigrationMs)
	}
	return fig, nil
}

func appendSetupPoint(fig *Figure, x, assign, snJoin, playerJoin, migration float64) {
	ys := []float64{assign, snJoin, playerJoin, migration}
	for i := range fig.Series {
		fig.Series[i].X = append(fig.Series[i].X, x)
		fig.Series[i].Y = append(fig.Series[i].Y, ys[i])
	}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
