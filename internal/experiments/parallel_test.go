package experiments

import (
	"reflect"
	"testing"
)

// TestFigureOutputsParallelEquivalence is the figure-level half of the
// parallel determinism contract (core/parallel.go): every plotted number a
// figure emits must be bit-identical between the legacy sequential ordering
// (Workers < 0) and a multi-goroutine worker pool. The core equivalence
// tests pin snapshots and state digests; this pins what actually leaves the
// repo — the figure series.
func TestFigureOutputsParallelEquivalence(t *testing.T) {
	figures := map[string]func(Options) (*Figure, error){
		"fig6":  Fig6,  // system comparison (all three modes)
		"fig10": Fig10, // reputation strategy sweep
		"fig13": Fig13, // provisioning under churn
		"fig4a": Fig4a, // supernode coverage
	}
	for name, fig := range figures {
		t.Run(name, func(t *testing.T) {
			seq, err := fig(Options{Workers: -1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := fig(Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("figure %s diverged between sequential and 4 workers\n seq: %+v\n par: %+v",
					name, seq, par)
			}
		})
	}
}
