package experiments

import (
	"strings"
	"testing"
)

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != ScaleQuick || o.Profile != ProfilePeerSim || o.Seed != 1 {
		t.Errorf("defaults: %+v", o)
	}
}

func TestScaleString(t *testing.T) {
	if ScaleQuick.String() != "quick" || ScaleFull.String() != "full" || Scale(0).String() != "unknown" {
		t.Error("Scale.String mismatch")
	}
}

func TestBaseConfigScales(t *testing.T) {
	quick := Options{Scale: ScaleQuick}.withDefaults()
	cfg, cycles, warmup := quick.baseConfig()
	if cfg.Players != 1200 || cycles != 6 || warmup != 3 {
		t.Errorf("quick base: players=%d cycles=%d warmup=%d", cfg.Players, cycles, warmup)
	}
	full := Options{Scale: ScaleFull}.withDefaults()
	cfg, cycles, warmup = full.baseConfig()
	if cfg.Players != 10000 || cycles != 28 || warmup != 21 {
		t.Errorf("full base: players=%d cycles=%d warmup=%d", cfg.Players, cycles, warmup)
	}
	pl := Options{Profile: ProfilePlanetLab}.withDefaults()
	cfg, _, _ = pl.baseConfig()
	if cfg.Players != 750 || cfg.Datacenters != 2 {
		t.Errorf("planetlab base: %+v", cfg)
	}
}

func TestFigureRender(t *testing.T) {
	fig := &Figure{
		ID: "test", Title: "title", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Label: "b", X: []float64{1, 2}, Y: []float64{30}},
		},
	}
	out := fig.String()
	for _, want := range []string{"test", "title", "a", "b", "10", "30", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	empty := &Figure{ID: "e", Title: "t"}
	if !strings.Contains(empty.String(), "no series") {
		t.Error("empty figure render")
	}
}

func TestTable2(t *testing.T) {
	fig := Table2()
	if len(fig.Series) != 3 {
		t.Fatalf("table2 series = %d", len(fig.Series))
	}
	if len(fig.Series[0].X) != 5 {
		t.Fatalf("table2 rows = %d", len(fig.Series[0].X))
	}
	if fig.Series[0].Y[4] != 1800 {
		t.Errorf("top bitrate = %v", fig.Series[0].Y[4])
	}
}

func TestFig16a(t *testing.T) {
	fig, err := Fig16a(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	rewards, costs, profits := fig.Series[0], fig.Series[1], fig.Series[2]
	for i := range rewards.X {
		if profits.Y[i] != rewards.Y[i]-costs.Y[i] {
			t.Error("profit != reward - cost")
		}
		// The paper's point: costs are trivial compared to rewards.
		if costs.Y[i] > 0.2*rewards.Y[i] {
			t.Errorf("costs not trivial at %v h: %v vs %v", rewards.X[i], costs.Y[i], rewards.Y[i])
		}
	}
	// Rewards grow with hours.
	if rewards.Y[len(rewards.Y)-1] <= rewards.Y[0] {
		t.Error("rewards do not grow with hours")
	}
}

func TestFig16b(t *testing.T) {
	fig, err := Fig16b(Options{})
	if err != nil {
		t.Fatal(err)
	}
	renting, rewards, savings := fig.Series[0], fig.Series[1], fig.Series[2]
	for i := range renting.X {
		if savings.Y[i] != renting.Y[i]-rewards.Y[i] {
			t.Error("saving != renting - reward")
		}
		if savings.Y[i] <= 0 {
			t.Errorf("provider saving not positive at %v h", renting.X[i])
		}
	}
}

func TestAnnualFleetCost(t *testing.T) {
	s := AnnualFleetCost()
	if !strings.Contains(s, "supernodes") || !strings.Contains(s, "datacenter") {
		t.Errorf("fleet cost text: %q", s)
	}
}

func TestAblationProvisioningSelection(t *testing.T) {
	fig, err := AblationProvisioningSelection(Options{})
	if err != nil {
		t.Fatal(err)
	}
	eq16, topk := fig.Series[0], fig.Series[1]
	for i := range eq16.X {
		// Top-k concentrates on the busiest ranks more than Eq. 16.
		if topk.Y[i] > eq16.Y[i] {
			t.Errorf("top-k mean rank %v above Eq.16 %v at k=%v", topk.Y[i], eq16.Y[i], eq16.X[i])
		}
	}
}

func TestAblationAssignmentRefinement(t *testing.T) {
	fig, err := AblationAssignmentRefinement(Options{})
	if err != nil {
		t.Fatal(err)
	}
	greedy, refined, polished := fig.Series[0], fig.Series[1], fig.Series[2]
	for i := range greedy.X {
		if refined.Y[i] < greedy.Y[i]-1e-9 {
			t.Errorf("refinement reduced Γ at z=%v", greedy.X[i])
		}
		if polished.Y[i] < refined.Y[i]-1e-9 {
			t.Errorf("polish reduced Γ at z=%v", greedy.X[i])
		}
	}
}

func TestFigureJSONAndCSV(t *testing.T) {
	fig := &Figure{
		ID: "t", Title: "demo", XLabel: "x,axis", YLabel: "y",
		Series: []Series{{Label: `quo"ted`, X: []float64{1, 2}, Y: []float64{3, 4}}},
	}
	data, err := fig.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id":"t"`, `"x":[1,2]`, `"y":[3,4]`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %q: %s", want, data)
		}
	}
	var csv strings.Builder
	fig.RenderCSV(&csv)
	out := csv.String()
	if !strings.Contains(out, `"x,axis"`) {
		t.Errorf("CSV header not escaped: %s", out)
	}
	if !strings.Contains(out, `"quo""ted"`) {
		t.Errorf("CSV quote not escaped: %s", out)
	}
	if !strings.Contains(out, "1,3") || !strings.Contains(out, "2,4") {
		t.Errorf("CSV rows missing: %s", out)
	}
}
