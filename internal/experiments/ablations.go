package experiments

import (
	"fmt"

	"cloudfog/internal/assignment"
	"cloudfog/internal/core"
	"cloudfog/internal/economics"
	"cloudfog/internal/provisioning"
	"cloudfog/internal/rng"
	"cloudfog/internal/social"
)

// AblationAssignmentRefinement compares the three stages of the server
// assignment algorithm — greedy-only, greedy + the paper's swap
// refinement, and the full pipeline with label-propagation polish — by the
// modularity Γ and cross-server fraction achieved on a guild graph.
func AblationAssignmentRefinement(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	n := 1200
	if opts.Scale == ScaleFull {
		n = 6000
	}
	r := rng.New(opts.Seed)
	g := social.Generate(social.GenerateConfig{N: n, Skew: 1.5}, r)
	fig := &Figure{
		ID: "ablation-assignment", Title: "server assignment: greedy vs refined vs polished",
		XLabel: "servers", YLabel: "value",
	}
	gamma := map[string]*Series{
		"Γ greedy":    {Label: "Γ greedy"},
		"Γ refined":   {Label: "Γ refined"},
		"Γ polished":  {Label: "Γ polished"},
		"cross final": {Label: "cross final"},
	}
	for _, z := range []int{25, 50, 100} {
		greedy, err := assignment.Assign(g, assignment.Config{Servers: z, SkipRefinement: true, PolishSweeps: -1}, rng.New(opts.Seed+1))
		if err != nil {
			return nil, err
		}
		refined, err := assignment.Assign(g, assignment.Config{Servers: z, PolishSweeps: -1}, rng.New(opts.Seed+1))
		if err != nil {
			return nil, err
		}
		polished, err := assignment.Assign(g, assignment.Config{Servers: z}, rng.New(opts.Seed+1))
		if err != nil {
			return nil, err
		}
		x := float64(z)
		add := func(key string, y float64) {
			s := gamma[key]
			s.X = append(s.X, x)
			s.Y = append(s.Y, y)
		}
		add("Γ greedy", greedy.Modularity)
		add("Γ refined", refined.Modularity)
		add("Γ polished", polished.Modularity)
		add("cross final", assignment.CrossServerFraction(g, polished.Community))
	}
	fig.Series = []Series{*gamma["Γ greedy"], *gamma["Γ refined"], *gamma["Γ polished"], *gamma["cross final"]}
	return fig, nil
}

// AblationReputationScope compares the paper's per-player (sybil-proof)
// reputation against the global-aggregation strawman it rejects, measuring
// the satisfied-player fraction under per-supernode load.
func AblationReputationScope(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	fig := &Figure{
		ID: "ablation-reputation", Title: "per-player vs global reputation vs none",
		XLabel: "players per supernode", YLabel: "satisfied players (fraction)",
	}
	local := Series{Label: "per-player"}
	none := Series{Label: "none"}
	for _, load := range []int{10, 20, 30} {
		sLocal, err := strategyLoadRun(opts, core.Strategies{Reputation: true}, load)
		if err != nil {
			return nil, fmt.Errorf("local load=%d: %w", load, err)
		}
		sNone, err := strategyLoadRun(opts, core.Strategies{}, load)
		if err != nil {
			return nil, fmt.Errorf("none load=%d: %w", load, err)
		}
		local.X, local.Y = append(local.X, float64(load)), append(local.Y, sLocal.SatisfiedFraction)
		none.X, none.Y = append(none.X, float64(load)), append(none.Y, sNone.SatisfiedFraction)
	}
	fig.Series = []Series{local, none}
	return fig, nil
}

// AblationProvisioningSelection compares the paper's rank-probability
// supernode selection (Eq. 16) against a plain top-k, measuring how many
// of the busiest candidates each strategy picks — Eq. 16 deliberately
// trades some of that concentration for geographic spread.
func AblationProvisioningSelection(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	r := rng.New(opts.Seed)
	n := 200
	cands := make([]provisioning.Candidate, n)
	for i := range cands {
		cands[i] = provisioning.Candidate{ID: i, PrevSupported: n - i}
	}
	fig := &Figure{
		ID: "ablation-provisioning", Title: "rank-probability (Eq.16) vs top-k selection",
		XLabel: "selection size", YLabel: "mean rank of selected (lower = busier)",
	}
	eq16 := Series{Label: "Eq.16"}
	topk := Series{Label: "top-k"}
	for _, k := range []int{10, 25, 50, 100} {
		var sumRank float64
		const trials = 50
		for tr := 0; tr < trials; tr++ {
			for _, c := range provisioning.Select(cands, k, r) {
				sumRank += float64(n - c.PrevSupported)
			}
		}
		meanEq16 := sumRank / float64(trials*k)
		var sumTop float64
		for _, c := range provisioning.SelectTopK(cands, k) {
			sumTop += float64(n - c.PrevSupported)
		}
		meanTop := sumTop / float64(k)
		eq16.X, eq16.Y = append(eq16.X, float64(k)), append(eq16.Y, meanEq16)
		topk.X, topk.Y = append(topk.X, float64(k)), append(topk.Y, meanTop)
	}
	fig.Series = []Series{eq16, topk}
	return fig, nil
}

// AblationAdaptationDebounce measures the bitrate-switch churn with and
// without the consecutive-estimate debounce the controller adds to the
// paper's adjustment rules.
func AblationAdaptationDebounce(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	fig := &Figure{
		ID: "ablation-debounce", Title: "adaptation debounce: switches per session",
		XLabel: "debounce (consecutive estimates)", YLabel: "mean bitrate switches per session",
	}
	series := Series{Label: "switches"}
	sat := Series{Label: "satisfied fraction"}
	for _, debounce := range []int{1, 3, 6} {
		cfg, cycles, warmup := opts.baseConfig()
		cfg.Players = 600
		cfg.AlwaysOn = true
		cfg.Mode = core.ModeCloudFog
		cfg.Strategies = core.Strategies{Adaptation: true}
		cfg.AdaptationDebounce = debounce
		snap, m, err := runSystem(cfg, cycles, warmup)
		if err != nil {
			return nil, err
		}
		series.X = append(series.X, float64(debounce))
		series.Y = append(series.Y, m.BitrateSwitches.Mean())
		sat.X = append(sat.X, float64(debounce))
		sat.Y = append(sat.Y, snap.SatisfiedFraction)
	}
	fig.Series = []Series{series, sat}
	return fig, nil
}

// ExtensionOptimalDeployment answers the paper's §5 future-work question —
// how many supernodes should the provider itself deploy — by combining the
// Eq. 3 saving maximization with the geographic coverage curve measured by
// the Fig. 4(b) study: coverage n(m) is sampled at increasing fleet sizes,
// interpolated, and swept for the saving-maximizing fleet.
func ExtensionOptimalDeployment(opts Options) (*Figure, error) {
	opts = opts.withDefaults()
	cfg, _, _ := opts.baseConfig()
	study, err := core.NewCoverageStudy(cfg)
	if err != nil {
		return nil, err
	}
	// Sample the coverage curve at the general 90 ms requirement.
	samples := []int{0, 25, 50, 100, 200, 400, 800}
	coverage := make([]float64, len(samples))
	for i, m := range samples {
		coverage[i] = study.CoverageVsSupernodes(m, []float64{90})[0]
	}
	covered := func(m int) int {
		if m <= 0 {
			return int(coverage[0] * float64(cfg.Players))
		}
		for i := 1; i < len(samples); i++ {
			if m <= samples[i] {
				frac := float64(m-samples[i-1]) / float64(samples[i]-samples[i-1])
				c := coverage[i-1] + frac*(coverage[i]-coverage[i-1])
				return int(c * float64(cfg.Players))
			}
		}
		return int(coverage[len(coverage)-1] * float64(cfg.Players))
	}
	model := economics.DeploymentModel{
		ServerBandwidthValue: 0.002,
		SupernodeReward:      0.001,
		StreamRate:           1200,
		UpdateRate:           cfg.UpdateKbps,
		SupernodeUpload:      24000,
		CoveredPlayers:       covered,
	}
	best, sweep, err := economics.OptimalDeployment(model, 800)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "extension-deployment",
		Title: fmt.Sprintf("provider saving vs fleet size (Eq. 3 over measured coverage); optimum m*=%d saving=%.0f",
			best.Supernodes, best.SavingUSD),
		XLabel: "supernodes", YLabel: "value",
	}
	saving := Series{Label: "saving $/unit-time"}
	coveredSeries := Series{Label: "covered players"}
	for _, p := range sweep {
		if p.Supernodes%25 != 0 {
			continue
		}
		saving.X = append(saving.X, float64(p.Supernodes))
		saving.Y = append(saving.Y, p.SavingUSD)
		coveredSeries.X = append(coveredSeries.X, float64(p.Supernodes))
		coveredSeries.Y = append(coveredSeries.Y, float64(p.Covered))
	}
	fig.Series = []Series{saving, coveredSeries}
	return fig, nil
}
