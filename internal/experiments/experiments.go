// Package experiments reproduces every table and figure of the CloudFog
// paper's evaluation (§4). Each Fig* function runs the corresponding
// experiment and returns a Figure: the same series the paper plots, as
// numbers. The cmd/cloudfogsim CLI and the repository's benchmark harness
// are thin wrappers over this package.
//
// Experiments run at two scales: ScaleQuick (a proportionally shrunken
// deployment that preserves the ratios of the paper's setup and finishes in
// seconds — the default for tests and benchmarks) and ScaleFull (the
// paper's 10,000-player PeerSim / 750-node PlanetLab settings).
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"cloudfog/internal/core"
)

// Scale selects the experiment size.
type Scale int

const (
	// ScaleQuick shrinks the deployment ~5x and shortens the measurement
	// protocol; ratios (players : supernodes : CDN servers) match the
	// paper's.
	ScaleQuick Scale = iota + 1
	// ScaleFull is the paper's deployment and 28-cycle protocol.
	ScaleFull
)

// String returns the scale name.
func (s Scale) String() string {
	switch s {
	case ScaleQuick:
		return "quick"
	case ScaleFull:
		return "full"
	default:
		return "unknown"
	}
}

// Profile selects the evaluation environment.
type Profile string

const (
	// ProfilePeerSim is the paper's simulation environment.
	ProfilePeerSim Profile = "peersim"
	// ProfilePlanetLab is the wide-area testbed profile.
	ProfilePlanetLab Profile = "planetlab"
)

// Options parameterizes an experiment run.
type Options struct {
	// Scale selects quick or full size. Defaults to ScaleQuick.
	Scale Scale
	// Profile selects PeerSim or PlanetLab. Defaults to ProfilePeerSim.
	Profile Profile
	// Seed drives all randomness. Defaults to 1.
	Seed uint64
	// Workers forwards to core.Config.Workers: 0 (the default) sizes the
	// streaming-evaluation worker pool by GOMAXPROCS, a positive value is a
	// fixed pool, and a negative value forces the legacy sequential
	// ordering. Seeded figure outputs are bit-identical across all
	// settings (see the core equivalence tests).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = ScaleQuick
	}
	if o.Profile == "" {
		o.Profile = ProfilePeerSim
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// baseConfig returns the profile's Config at the chosen scale, plus the
// simulation protocol (cycles, warm-up) to use.
func (o Options) baseConfig() (cfg core.Config, cycles, warmup int) {
	switch o.Profile {
	case ProfilePlanetLab:
		cfg = core.PlanetLab()
	default:
		cfg = core.PeerSim()
	}
	cfg.Seed = o.Seed
	cfg.Workers = o.Workers
	if o.Scale == ScaleFull {
		return cfg, 28, 21
	}
	// Quick scale: shrink the PeerSim deployment ~8x; PlanetLab is small
	// already, so only its protocol shortens.
	if o.Profile != ProfilePlanetLab {
		cfg.Players = 1200
		cfg.Supernodes = 72
		cfg.SupernodeCandidates = 120
		cfg.CDNServers = 36
	}
	return cfg, 6, 3
}

// Series is one plotted line: a label and parallel X/Y points.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is the numeric reproduction of one paper figure: the same series
// the paper plots.
type Figure struct {
	// ID is the paper figure identifier, e.g. "fig4a".
	ID string
	// Title describes the experiment.
	Title string
	// XLabel / YLabel name the axes.
	XLabel string
	YLabel string
	// Series are the plotted lines.
	Series []Series
}

// Render writes the figure as an aligned text table: one row per X value,
// one column per series.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		fmt.Fprintln(w, "  (no series)")
		return
	}
	// Header.
	fmt.Fprintf(w, "  %-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, " %14s", s.Label)
	}
	fmt.Fprintf(w, "   [%s]\n", f.YLabel)
	// Rows keyed by the first series' X values.
	for i, x := range f.Series[0].X {
		fmt.Fprintf(w, "  %-14.6g", x)
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(w, " %14.6g", s.Y[i])
			} else {
				fmt.Fprintf(w, " %14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// String renders the figure to a string.
func (f *Figure) String() string {
	var b strings.Builder
	f.Render(&b)
	return b.String()
}

// MarshalJSON emits the figure as a stable JSON object (for -o json and
// downstream plotting tools).
func (f *Figure) MarshalJSON() ([]byte, error) {
	type series struct {
		Label string    `json:"label"`
		X     []float64 `json:"x"`
		Y     []float64 `json:"y"`
	}
	type figure struct {
		ID     string   `json:"id"`
		Title  string   `json:"title"`
		XLabel string   `json:"xLabel"`
		YLabel string   `json:"yLabel"`
		Series []series `json:"series"`
	}
	out := figure{ID: f.ID, Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel}
	for _, s := range f.Series {
		out.Series = append(out.Series, series(s))
	}
	return json.Marshal(out)
}

// RenderCSV writes the figure as CSV: a header row of series labels, then
// one row per X value.
func (f *Figure) RenderCSV(w io.Writer) {
	fmt.Fprintf(w, "%s", csvEscape(f.XLabel))
	for _, s := range f.Series {
		fmt.Fprintf(w, ",%s", csvEscape(s.Label))
	}
	fmt.Fprintln(w)
	if len(f.Series) == 0 {
		return
	}
	for i, x := range f.Series[0].X {
		fmt.Fprintf(w, "%g", x)
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(w, ",%g", s.Y[i])
			} else {
				fmt.Fprint(w, ",")
			}
		}
		fmt.Fprintln(w)
	}
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// runSystem builds and runs one simulated deployment, returning its metric
// snapshot. It exists so every experiment constructs systems the same way.
func runSystem(cfg core.Config, cycles, warmup int) (core.Snapshot, *core.Metrics, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return core.Snapshot{}, nil, fmt.Errorf("build system: %w", err)
	}
	m := sys.Run(cycles, warmup)
	return m.Snapshot(), m, nil
}
