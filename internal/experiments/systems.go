package experiments

import (
	"fmt"

	"cloudfog/internal/core"
)

// systemVariant is one compared system of Figs. 6–8.
type systemVariant struct {
	label      string
	mode       core.Mode
	strategies core.Strategies
	// cdnServers overrides the CDN server count (CDN-45 / CDN-80).
	cdnServers int
}

// variantsFor returns the systems compared by Figs. 6–8 for a profile,
// scaled. The extra CDN variants are the paper's scarce-server baselines
// (fewer servers than the main CDN deployment).
func variantsFor(opts Options, cfg core.Config, includeAdvanced bool) []systemVariant {
	small, tiny := cfg.CDNServers/7, cfg.CDNServers/4
	if small < 2 {
		small = 2
	}
	if tiny <= small {
		tiny = small + 2
	}
	vs := []systemVariant{
		{label: "Cloud", mode: core.ModeCloud},
		{label: fmt.Sprintf("CDN-%d", small), mode: core.ModeCDN, cdnServers: small},
		{label: fmt.Sprintf("CDN-%d", tiny), mode: core.ModeCDN, cdnServers: tiny},
		{label: "CDN", mode: core.ModeCDN, cdnServers: cfg.CDNServers},
		{label: "CloudFog/B", mode: core.ModeCloudFog},
	}
	if includeAdvanced {
		vs = append(vs, systemVariant{
			label: "CloudFog/A", mode: core.ModeCloudFog, strategies: core.AllStrategies(),
		})
	}
	return vs
}

// playerSweep returns the concurrent-player counts of the Figs. 6–8 x-axis.
func playerSweep(opts Options, cfg core.Config) []int {
	if opts.Profile == ProfilePlanetLab {
		return []int{150, 300, 450, 600, 750}
	}
	if opts.Scale == ScaleFull {
		return []int{2000, 4000, 6000, 8000, 10000}
	}
	return []int{400, 800, 1200}
}

// SystemComparison runs the Figs. 6–8 sweep once and returns the three
// figures (server bandwidth consumption, average response latency, playback
// continuity) so callers do not pay for three separate sweeps.
func SystemComparison(opts Options) (bandwidth, latency, continuity *Figure, err error) {
	opts = opts.withDefaults()
	base, cycles, warmup := opts.baseConfig()
	suffix := "a"
	if opts.Profile == ProfilePlanetLab {
		suffix = "b"
	}
	bandwidth = &Figure{
		ID: "fig6" + suffix, Title: "server bandwidth consumption vs concurrent players",
		XLabel: "#players", YLabel: "cloud bandwidth (Mbps)",
	}
	latency = &Figure{
		ID: "fig7" + suffix, Title: "average response latency vs concurrent players",
		XLabel: "#players", YLabel: "response latency (ms)",
	}
	continuity = &Figure{
		ID: "fig8" + suffix, Title: "playback continuity vs concurrent players",
		XLabel: "#players", YLabel: "continuity",
	}

	players := playerSweep(opts, base)
	for _, v := range variantsFor(opts, base, true) {
		sb := Series{Label: v.label}
		sl := Series{Label: v.label}
		sc := Series{Label: v.label}
		for _, n := range players {
			cfg := base
			cfg.Mode = v.mode
			cfg.Strategies = v.strategies
			cfg.Players = n
			cfg.AlwaysOn = true
			if v.cdnServers > 0 {
				cfg.CDNServers = v.cdnServers
			}
			snap, _, rerr := runSystem(cfg, cycles, warmup)
			if rerr != nil {
				return nil, nil, nil, fmt.Errorf("%s players=%d: %w", v.label, n, rerr)
			}
			x := float64(n)
			sb.X, sb.Y = append(sb.X, x), append(sb.Y, snap.MeanCloudEgressMbps)
			sl.X, sl.Y = append(sl.X, x), append(sl.Y, snap.MeanResponseLatencyMs)
			sc.X, sc.Y = append(sc.X, x), append(sc.Y, snap.MeanContinuity)
		}
		// Fig. 6 plots CloudFog once: basic and advanced consume the same
		// update bandwidth in the paper's accounting.
		if v.label != "CloudFog/A" {
			bandwidth.Series = append(bandwidth.Series, sb)
		}
		latency.Series = append(latency.Series, sl)
		continuity.Series = append(continuity.Series, sc)
	}
	return bandwidth, latency, continuity, nil
}

// Fig6 reproduces Fig. 6: cloud bandwidth consumption vs concurrent
// players. Prefer SystemComparison when also reproducing Figs. 7/8.
func Fig6(opts Options) (*Figure, error) {
	b, _, _, err := SystemComparison(opts)
	return b, err
}

// Fig7 reproduces Fig. 7: average response latency vs concurrent players.
func Fig7(opts Options) (*Figure, error) {
	_, l, _, err := SystemComparison(opts)
	return l, err
}

// Fig8 reproduces Fig. 8: playback continuity vs concurrent players.
func Fig8(opts Options) (*Figure, error) {
	_, _, c, err := SystemComparison(opts)
	return c, err
}
