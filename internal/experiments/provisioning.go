package experiments

import (
	"fmt"

	"cloudfog/internal/core"
	"cloudfog/internal/workload"
)

// ProvisioningComparison runs the churn experiment of Figs. 13–15 once and
// returns the three figures (cloud bandwidth, response latency, continuity)
// vs the peak-hour player arrival rate, comparing CloudFog with the dynamic
// supernode provisioning strategy against the fixed-pool baseline.
func ProvisioningComparison(opts Options) (bandwidth, latency, continuity *Figure, err error) {
	opts = opts.withDefaults()
	suffix := "a"
	if opts.Profile == ProfilePlanetLab {
		suffix = "b"
	}
	bandwidth = &Figure{
		ID: "fig13" + suffix, Title: "cloud bandwidth vs peak arrival rate (provisioning)",
		XLabel: "arrival rate (players/min)", YLabel: "cloud bandwidth (Mbps)",
	}
	latency = &Figure{
		ID: "fig14" + suffix, Title: "response latency vs peak arrival rate (provisioning)",
		XLabel: "arrival rate (players/min)", YLabel: "response latency (ms)",
	}
	continuity = &Figure{
		ID: "fig15" + suffix, Title: "continuity vs peak arrival rate (provisioning)",
		XLabel: "arrival rate (players/min)", YLabel: "continuity",
	}

	// Arrival rates and pool sizing per profile/scale.
	var (
		rates      []float64
		offPeak    float64
		population int
		fixedPool  int
		candidates int
	)
	switch {
	case opts.Profile == ProfilePlanetLab:
		rates, offPeak = []float64{2, 3, 4, 5, 6, 7}, 1
		population, fixedPool, candidates = 750, 10, 60
	case opts.Scale == ScaleFull:
		rates, offPeak = []float64{10, 20, 30, 40, 50, 60}, 5
		population, fixedPool, candidates = 10000, 100, 1000
	default:
		rates, offPeak = []float64{5, 10, 15}, 2
		population, fixedPool, candidates = 2000, 20, 200
	}

	variants := []struct {
		label     string
		provision bool
	}{
		{"CloudFog-provision", true},
		{"CloudFog/B", false},
	}
	_, cycles, warmup := opts.baseConfig()
	for _, v := range variants {
		sb := Series{Label: v.label}
		sl := Series{Label: v.label}
		sc := Series{Label: v.label}
		for _, rate := range rates {
			cfg, _, _ := opts.baseConfig()
			cfg.Mode = core.ModeCloudFog
			cfg.Players = population
			cfg.SupernodeCandidates = candidates
			cfg.Supernodes = candidates
			cfg.Arrivals = &workload.ArrivalScript{
				OffPeakPerMinute: offPeak,
				PeakPerMinute:    rate,
			}
			if v.provision {
				cfg.Strategies = core.Strategies{Provisioning: true}
			} else {
				cfg.Strategies = core.Strategies{}
				cfg.FixedSupernodePool = fixedPool
			}
			snap, _, rerr := runSystem(cfg, cycles, warmup)
			if rerr != nil {
				return nil, nil, nil, fmt.Errorf("%s rate=%g: %w", v.label, rate, rerr)
			}
			sb.X, sb.Y = append(sb.X, rate), append(sb.Y, snap.MeanCloudEgressMbps)
			sl.X, sl.Y = append(sl.X, rate), append(sl.Y, snap.MeanResponseLatencyMs)
			sc.X, sc.Y = append(sc.X, rate), append(sc.Y, snap.MeanContinuity)
		}
		bandwidth.Series = append(bandwidth.Series, sb)
		latency.Series = append(latency.Series, sl)
		continuity.Series = append(continuity.Series, sc)
	}
	return bandwidth, latency, continuity, nil
}

// Fig13 reproduces Fig. 13: cloud bandwidth consumption vs peak arrival
// rate with and without dynamic supernode provisioning.
func Fig13(opts Options) (*Figure, error) {
	b, _, _, err := ProvisioningComparison(opts)
	return b, err
}

// Fig14 reproduces Fig. 14: response latency vs peak arrival rate.
func Fig14(opts Options) (*Figure, error) {
	_, l, _, err := ProvisioningComparison(opts)
	return l, err
}

// Fig15 reproduces Fig. 15: playback continuity vs peak arrival rate.
func Fig15(opts Options) (*Figure, error) {
	_, _, c, err := ProvisioningComparison(opts)
	return c, err
}
