package provisioning

import (
	"math"
	"testing"
	"testing/quick"

	"cloudfog/internal/rng"
)

func TestNewForecasterValidation(t *testing.T) {
	if _, err := NewForecaster(0, 0.3, 0.5); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewForecaster(42, -0.1, 0.5); err == nil {
		t.Error("negative theta accepted")
	}
	if _, err := NewForecaster(42, 0.3, 1.0); err == nil {
		t.Error("Theta=1 accepted")
	}
	f, err := NewForecaster(42, 0.3, 0.5)
	if err != nil || f.Period() != 42 {
		t.Errorf("valid forecaster rejected: %v", err)
	}
}

func TestForecastColdStart(t *testing.T) {
	f, _ := NewForecaster(7, 0.3, 0.5)
	if got := f.Forecast(); got != 0 {
		t.Errorf("empty forecast = %v", got)
	}
	f.Observe(100)
	if got := f.Forecast(); got != 100 {
		t.Errorf("naive forecast = %v, want last observation", got)
	}
}

func TestForecastNonNegativeProperty(t *testing.T) {
	// Property: forecasts are never negative whatever the history.
	f := func(obs []uint16) bool {
		fc, _ := NewForecaster(5, 0.3, 0.5)
		for _, o := range obs {
			fc.Forecast()
			fc.Observe(float64(o % 1000))
		}
		return fc.Forecast() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForecastLearnsSeasonalPattern(t *testing.T) {
	// A perfectly periodic series must be forecast almost exactly once a
	// full season of history exists.
	period := 12
	pattern := []float64{10, 20, 50, 120, 200, 260, 300, 280, 200, 120, 60, 20}
	f, _ := NewForecaster(period, 0.3, 0.5)
	var maxErr float64
	for week := 0; week < 6; week++ {
		for i := 0; i < period; i++ {
			pred := f.Forecast()
			actual := pattern[i]
			if week >= 3 {
				if e := math.Abs(pred - actual); e > maxErr {
					maxErr = e
				}
			}
			f.Observe(actual)
		}
	}
	if maxErr > 15 {
		t.Errorf("seasonal forecast error %v too large", maxErr)
	}
	if f.History() != 6*period {
		t.Errorf("History = %d", f.History())
	}
}

func TestForecastTracksGrowth(t *testing.T) {
	// Week-over-week growth must be extrapolated, not just repeated.
	period := 4
	f, _ := NewForecaster(period, 0.3, 0.5)
	for w := 0; w < 5; w++ {
		for i := 0; i < period; i++ {
			f.Forecast()
			f.Observe(float64(100*w + 10*i))
		}
	}
	pred := f.Forecast()
	// Next value in the pattern is 100*5 + 0 = 500.
	if math.Abs(pred-500) > 60 {
		t.Errorf("growth forecast %v, want ~500", pred)
	}
}

func TestObserveClampsNegative(t *testing.T) {
	f, _ := NewForecaster(3, 0.3, 0.5)
	f.Observe(-10)
	if got := f.Forecast(); got != 0 {
		t.Errorf("negative observation leaked: %v", got)
	}
}

func TestSupernodeCount(t *testing.T) {
	tests := []struct {
		name      string
		predicted float64
		epsilon   float64
		avgCap    float64
		want      int
	}{
		{"exact", 100, 0, 10, 10},
		{"headroom", 100, 0.15, 10, 12},
		{"round up", 101, 0, 10, 11},
		{"zero predicted", 0, 0.15, 10, 0},
		{"zero capacity", 100, 0.15, 0, 0},
		{"negative epsilon treated as zero", 100, -1, 10, 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SupernodeCount(tt.predicted, tt.epsilon, tt.avgCap); got != tt.want {
				t.Errorf("SupernodeCount = %d, want %d", got, tt.want)
			}
		})
	}
}

func candidates(n int) []Candidate {
	out := make([]Candidate, n)
	for i := range out {
		out[i] = Candidate{ID: i, PrevSupported: n - i} // ID 0 busiest
	}
	return out
}

func TestSelectCountAndUniqueness(t *testing.T) {
	r := rng.New(1)
	sel := Select(candidates(20), 8, r)
	if len(sel) != 8 {
		t.Fatalf("selected %d", len(sel))
	}
	seen := map[int]bool{}
	for _, c := range sel {
		if seen[c.ID] {
			t.Fatalf("duplicate selection %d", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestSelectAllWhenCountExceeds(t *testing.T) {
	r := rng.New(2)
	if got := Select(candidates(5), 10, r); len(got) != 5 {
		t.Errorf("selected %d of 5", len(got))
	}
	if Select(nil, 3, r) != nil {
		t.Error("empty candidates should select nil")
	}
	if Select(candidates(5), 0, r) != nil {
		t.Error("count 0 should select nil")
	}
}

func TestSelectFavorsBusyRanks(t *testing.T) {
	// Eq. 16: rank j chosen with probability 1/j (normalized). Over many
	// draws, the busiest candidate must be selected far more often than a
	// deep rank.
	r := rng.New(3)
	topCount, deepCount := 0, 0
	for trial := 0; trial < 3000; trial++ {
		sel := Select(candidates(20), 1, r)
		switch sel[0].ID {
		case 0:
			topCount++
		case 19:
			deepCount++
		}
	}
	if topCount < 5*deepCount {
		t.Errorf("rank weighting weak: top=%d deep=%d", topCount, deepCount)
	}
	if deepCount == 0 {
		t.Error("deep ranks never selected; Eq.16 should give them some probability")
	}
}

func TestSelectTopK(t *testing.T) {
	sel := SelectTopK(candidates(10), 3)
	if len(sel) != 3 {
		t.Fatalf("selected %d", len(sel))
	}
	for i, c := range sel {
		if c.ID != i {
			t.Errorf("TopK[%d] = %d, want busiest-first", i, c.ID)
		}
	}
	if SelectTopK(nil, 2) != nil || SelectTopK(candidates(3), 0) != nil {
		t.Error("edge cases not nil")
	}
	if got := SelectTopK(candidates(2), 5); len(got) != 2 {
		t.Errorf("overlong TopK = %d", len(got))
	}
}

func TestSelectTieBreakByID(t *testing.T) {
	cands := []Candidate{{ID: 5, PrevSupported: 3}, {ID: 2, PrevSupported: 3}, {ID: 9, PrevSupported: 3}}
	sel := SelectTopK(cands, 3)
	if sel[0].ID != 2 || sel[1].ID != 5 || sel[2].ID != 9 {
		t.Errorf("tie-break not by ID: %v", sel)
	}
}
