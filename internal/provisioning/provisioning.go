// Package provisioning implements the dynamic supernode provisioning
// strategy of §3.5 of the CloudFog paper.
//
// MMOG populations follow a regular weekly pattern with <10% week-to-week
// variation, so the number of online players for a coming time window is
// forecast with a seasonal ARIMA(0,1,1)(0,1,1)_T model (Eq. 14), the number
// of supernodes to pre-deploy derives from the forecast (Eq. 15), and the
// concrete supernodes are chosen by a rank-probability rule favoring
// previously-busy locations (Eq. 16).
package provisioning

import (
	"fmt"
	"math"
	"sort"

	"cloudfog/internal/rng"
)

// Forecaster predicts the number of online players per time window using a
// seasonal ARIMA(0,1,1)(0,1,1)_T model:
//
//	N̂_t = N_{t-1} + N_{t-T} − N_{t-T-1}
//	      − θ·W_{t-1} − Θ·W_{t-T} + θ·Θ·W_{t-T-1}
//
// where T is the seasonal period (time windows per week), θ the MA(1)
// coefficient, Θ the seasonal SMA(1) coefficient, and W_t the one-step
// forecast residuals (white noise).
type Forecaster struct {
	period    int
	theta     float64
	bigTheta  float64
	observed  []float64
	residuals []float64
	lastPred  float64
	havePred  bool
}

// NewForecaster creates a Forecaster with seasonal period T (windows per
// week) and MA coefficients theta and bigTheta. It returns an error when
// the period is not positive or a coefficient is outside [0, 1).
func NewForecaster(period int, theta, bigTheta float64) (*Forecaster, error) {
	if period <= 0 {
		return nil, fmt.Errorf("provisioning: period must be positive, got %d", period)
	}
	if theta < 0 || theta >= 1 || bigTheta < 0 || bigTheta >= 1 {
		return nil, fmt.Errorf("provisioning: MA coefficients must be in [0,1), got θ=%g Θ=%g", theta, bigTheta)
	}
	return &Forecaster{period: period, theta: theta, bigTheta: bigTheta}, nil
}

// Observe records the actual player count of the window that just closed
// and updates the residual series.
func (f *Forecaster) Observe(actual float64) {
	if actual < 0 {
		actual = 0
	}
	var w float64
	if f.havePred {
		w = actual - f.lastPred
	}
	f.observed = append(f.observed, actual)
	f.residuals = append(f.residuals, w)
	f.havePred = false
}

// at returns series[len-1-lag], or 0 when history is too short.
func at(series []float64, lag int) float64 {
	i := len(series) - 1 - lag
	if i < 0 {
		return 0
	}
	return series[i]
}

// Forecast predicts the number of players in the next window. With less
// than one full season of history it falls back to the last observation
// (naive forecast). The prediction is clamped at zero.
func (f *Forecaster) Forecast() float64 {
	n := len(f.observed)
	var pred float64
	switch {
	case n == 0:
		pred = 0
	case n <= f.period:
		pred = at(f.observed, 0)
	default:
		pred = at(f.observed, 0) + at(f.observed, f.period-1) - at(f.observed, f.period) -
			f.theta*at(f.residuals, 0) -
			f.bigTheta*at(f.residuals, f.period-1) +
			f.theta*f.bigTheta*at(f.residuals, f.period)
	}
	if pred < 0 {
		pred = 0
	}
	f.lastPred = pred
	f.havePred = true
	return pred
}

// History returns the number of observed windows.
func (f *Forecaster) History() int { return len(f.observed) }

// Period returns the seasonal period T.
func (f *Forecaster) Period() int { return f.period }

// SupernodeCount returns Ns_t = ceil((1+epsilon) * predicted / avgCapacity)
// (Eq. 15): the number of supernodes to pre-deploy to absorb the predicted
// load with headroom epsilon. avgCapacity must be positive.
func SupernodeCount(predicted, epsilon, avgCapacity float64) int {
	if avgCapacity <= 0 || predicted <= 0 {
		return 0
	}
	if epsilon < 0 {
		epsilon = 0
	}
	return int(math.Ceil((1 + epsilon) * predicted / avgCapacity))
}

// Candidate is a supernode candidate considered for pre-deployment.
type Candidate struct {
	// ID identifies the supernode.
	ID int
	// PrevSupported is N_i: how many players the supernode supported in
	// the previous time slot (a proxy for local demand).
	PrevSupported int
}

// Select chooses up to count supernodes from the candidates using the
// paper's rank-probability rule (Eq. 16): candidates are ranked by
// PrevSupported descending, and rank j is drawn with probability
// proportional to 1/j, without replacement. The harmonic weighting trades
// pure utilization for geographic spread.
func Select(candidates []Candidate, count int, r *rng.Rand) []Candidate {
	if count <= 0 || len(candidates) == 0 {
		return nil
	}
	ranked := append([]Candidate(nil), candidates...)
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].PrevSupported != ranked[j].PrevSupported {
			return ranked[i].PrevSupported > ranked[j].PrevSupported
		}
		return ranked[i].ID < ranked[j].ID
	})
	if count >= len(ranked) {
		return ranked
	}
	// Draw without replacement by harmonic rank weight.
	weights := make([]float64, len(ranked))
	for j := range weights {
		weights[j] = 1 / float64(j+1)
	}
	selected := make([]Candidate, 0, count)
	taken := make([]bool, len(ranked))
	for len(selected) < count {
		var total float64
		for j, w := range weights {
			if !taken[j] {
				total += w
			}
		}
		u := r.Float64() * total
		var acc float64
		pick := -1
		for j, w := range weights {
			if taken[j] {
				continue
			}
			acc += w
			if u < acc {
				pick = j
				break
			}
		}
		if pick < 0 { // numerical edge: take the last free slot
			for j := len(ranked) - 1; j >= 0; j-- {
				if !taken[j] {
					pick = j
					break
				}
			}
		}
		taken[pick] = true
		selected = append(selected, ranked[pick])
	}
	return selected
}

// SelectTopK is the greedy ablation baseline: take the count busiest
// candidates outright (see DESIGN.md §6).
func SelectTopK(candidates []Candidate, count int) []Candidate {
	if count <= 0 || len(candidates) == 0 {
		return nil
	}
	ranked := append([]Candidate(nil), candidates...)
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].PrevSupported != ranked[j].PrevSupported {
			return ranked[i].PrevSupported > ranked[j].PrevSupported
		}
		return ranked[i].ID < ranked[j].ID
	})
	if count > len(ranked) {
		count = len(ranked)
	}
	return ranked[:count]
}
