package streaming

import (
	"math"
	"testing"
	"testing/quick"

	"cloudfog/internal/game"
)

func TestFrameAndPacketBits(t *testing.T) {
	// 1200 kbps at 30 fps: 40,000 bits per frame, 10,000 per packet.
	if got := FrameBits(1200); got != 40000 {
		t.Errorf("FrameBits = %v", got)
	}
	if got := PacketBits(1200); got != 10000 {
		t.Errorf("PacketBits = %v", got)
	}
}

func TestOnTimeProbabilityBounds(t *testing.T) {
	// Property: probability always in [0, 1] for any inputs.
	f := func(oneway, eff, bitrate, req uint16) bool {
		link := Link{OneWayMs: float64(oneway % 500), EffectiveKbps: float64(eff)}
		p := OnTimeProbability(link, float64(bitrate), float64(req%300))
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOnTimeProbabilityEdges(t *testing.T) {
	link := Link{OneWayMs: 10, EffectiveKbps: 5000}
	if got := OnTimeProbability(link, 0, 50); got != 1 {
		t.Errorf("zero bitrate on-time = %v, want 1", got)
	}
	if got := OnTimeProbability(Link{OneWayMs: 10}, 1000, 50); got != 0 {
		t.Errorf("zero bandwidth on-time = %v, want 0", got)
	}
	// Requirement below the one-way latency: impossible.
	if got := OnTimeProbability(Link{OneWayMs: 100, EffectiveKbps: 5000}, 300, 50); got != 0 {
		t.Errorf("infeasible requirement on-time = %v, want 0", got)
	}
}

func TestOnTimeMonotoneInRequirement(t *testing.T) {
	link := Link{OneWayMs: 15, EffectiveKbps: 4000}
	prev := -1.0
	for req := 20.0; req <= 150; req += 10 {
		p := OnTimeProbability(link, 1200, req)
		if p < prev {
			t.Fatalf("on-time not monotone in requirement at %v: %v < %v", req, p, prev)
		}
		prev = p
	}
}

func TestOnTimeMonotoneInBandwidth(t *testing.T) {
	prev := -1.0
	for eff := 500.0; eff <= 20000; eff *= 2 {
		p := OnTimeProbability(Link{OneWayMs: 15, EffectiveKbps: eff}, 1200, 90)
		if p < prev-1e-12 {
			t.Fatalf("on-time not monotone in bandwidth at %v: %v < %v", eff, p, prev)
		}
		prev = p
	}
}

func TestOnTimeDecreasesWithDistance(t *testing.T) {
	near := OnTimeProbability(Link{OneWayMs: 10, EffectiveKbps: 5000}, 1200, 90)
	far := OnTimeProbability(Link{OneWayMs: 70, EffectiveKbps: 5000}, 1200, 90)
	if far >= near {
		t.Errorf("distant path on-time %v >= near %v", far, near)
	}
}

func TestLowerBitrateHelpsOnCongestedLink(t *testing.T) {
	// The premise of the receiver-driven adaptation: shedding quality
	// raises the on-time fraction on a tight link.
	link := Link{OneWayMs: 20, EffectiveKbps: 1500}
	high := OnTimeProbability(link, game.MustQuality(5).BitrateKbps, 90)
	low := OnTimeProbability(link, game.MustQuality(2).BitrateKbps, 90)
	if low <= high {
		t.Errorf("adaptation premise broken: low %v <= high %v", low, high)
	}
}

func TestSaturatedLinkCapsDeliverableFraction(t *testing.T) {
	// Bitrate twice the link: at most half the packets can ever arrive.
	link := Link{OneWayMs: 5, EffectiveKbps: 600}
	p := OnTimeProbability(link, 1200, 1000)
	if p > 0.5 {
		t.Errorf("saturated link on-time %v > deliverable fraction 0.5", p)
	}
}

func TestNetworkLatency(t *testing.T) {
	link := Link{OneWayMs: 30, EffectiveKbps: 4000, BaseJitterMs: 2}
	lat := NetworkLatencyMs(link, 1200)
	trans := PacketBits(1200) / 4000
	if lat < 30+trans {
		t.Errorf("latency %v below oneway+transmission", lat)
	}
	if math.IsInf(NetworkLatencyMs(Link{OneWayMs: 1}, 100), 1) != true {
		t.Error("zero-bandwidth latency should be +Inf")
	}
}

func TestNetworkLatencyGrowsWithUtilization(t *testing.T) {
	lightly := NetworkLatencyMs(Link{OneWayMs: 10, EffectiveKbps: 20000}, 1200)
	heavily := NetworkLatencyMs(Link{OneWayMs: 10, EffectiveKbps: 1300}, 1200)
	if heavily <= lightly {
		t.Errorf("queueing term missing: %v <= %v", heavily, lightly)
	}
}

func TestDeliveredKbps(t *testing.T) {
	// Unsaturated link: the sender prefetches at PrefetchFactor x bitrate.
	if got := DeliveredKbps(Link{EffectiveKbps: 5000}, 1200); got != PrefetchFactor*1200 {
		t.Errorf("unsaturated delivered = %v, want %v", got, PrefetchFactor*1200)
	}
	// Saturated link: delivery is capped by the link.
	if got := DeliveredKbps(Link{EffectiveKbps: 800}, 1200); got != 800 {
		t.Errorf("saturated delivered = %v", got)
	}
	// Link between bitrate and prefetch pace: still link-bound.
	if got := DeliveredKbps(Link{EffectiveKbps: 1500}, 1200); got != 1500 {
		t.Errorf("mid delivered = %v", got)
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	if m.Observed() || m.Continuity() != 0 || m.MeanLatencyMs() != 0 || m.Satisfied() {
		t.Error("zero meter misbehaves")
	}
	m.Observe(1, 0.9, 50)
	m.Observe(3, 0.5, 90)
	if !m.Observed() {
		t.Error("meter not observed")
	}
	wantCont := (1*0.9 + 3*0.5) / 4
	if math.Abs(m.Continuity()-wantCont) > 1e-12 {
		t.Errorf("continuity = %v, want %v", m.Continuity(), wantCont)
	}
	wantLat := (1*50.0 + 3*90.0) / 4
	if math.Abs(m.MeanLatencyMs()-wantLat) > 1e-12 {
		t.Errorf("latency = %v, want %v", m.MeanLatencyMs(), wantLat)
	}
}

func TestMeterClampsAndIgnoresBadDurations(t *testing.T) {
	var m Meter
	m.Observe(0, 0.5, 10)  // ignored
	m.Observe(-1, 0.5, 10) // ignored
	if m.Observed() {
		t.Error("non-positive durations recorded")
	}
	m.Observe(1, 1.7, 10)
	if m.Continuity() != 1 {
		t.Errorf("p>1 not clamped: %v", m.Continuity())
	}
	m.Observe(1, -0.5, 10)
	if m.Continuity() != 0.5 {
		t.Errorf("p<0 not clamped: %v", m.Continuity())
	}
}

func TestMeterSatisfied(t *testing.T) {
	var m Meter
	m.Observe(1, 0.96, 40)
	if !m.Satisfied() {
		t.Error("96% on-time should satisfy the 95% bar")
	}
	m.Observe(1, 0.5, 40)
	if m.Satisfied() {
		t.Error("73% on-time satisfied")
	}
}

func TestMeterContinuityBoundedProperty(t *testing.T) {
	f := func(obs []uint8) bool {
		var m Meter
		for i, o := range obs {
			m.Observe(float64(i%3)+0.5, float64(o)/200, float64(o))
		}
		c := m.Continuity()
		return c >= 0 && c <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPlayoutBudgetConstants(t *testing.T) {
	if PlayoutDelayMs != 20 {
		t.Errorf("PlayoutDelayMs = %v, want the paper's 20", PlayoutDelayMs)
	}
	if SatisfactionThreshold != 0.95 {
		t.Errorf("SatisfactionThreshold = %v, want 0.95", SatisfactionThreshold)
	}
}
