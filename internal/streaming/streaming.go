// Package streaming models game-video delivery from a source (supernode or
// cloud server) to a player, and the paper's two QoS metrics built on it:
//
//   - playback continuity: "the proportion of packets arrived within the
//     required response latency over all packets in a game video";
//   - satisfied player: a player receiving >= 95% of its game packets
//     within the game's response-latency requirement.
//
// Frame-level delivery is evaluated analytically rather than by simulating
// every one of the 30 frames per second: given the deterministic path
// latency, the frame transmission time at the current encoding bitrate, and
// an exponential queueing-jitter term whose mean grows with link
// utilization, the on-time probability per frame has a closed form. That
// keeps a 10,000-player simulation tractable while preserving exactly the
// sensitivities the paper measures (distance, bandwidth headroom,
// congestion, encoding bitrate).
package streaming

import (
	"math"

	"cloudfog/internal/game"
)

// PlayoutDelayMs is the client-side playout plus cloud processing delay:
// the paper attributes 20 ms of the 100 ms budget to it.
const PlayoutDelayMs = 20

// SatisfactionThreshold is the on-time fraction above which a player counts
// as satisfied (95% per the paper).
const SatisfactionThreshold = 0.95

// Link describes the effective delivery path for one streaming session
// during one evaluation interval.
type Link struct {
	// OneWayMs is the one-way network latency from source to player.
	OneWayMs float64
	// EffectiveKbps is the bandwidth actually available to this stream:
	// min(source upload share, player download), scaled by congestion and
	// any willingness throttling.
	EffectiveKbps float64
	// BaseJitterMs is the mean queueing jitter on an unloaded path.
	// Defaults to DefaultBaseJitterMs when zero.
	BaseJitterMs float64
}

// DefaultBaseJitterMs is the unloaded-path mean queueing jitter.
const DefaultBaseJitterMs = 2.0

// FrameBits returns the size of one video frame at the given bitrate.
func FrameBits(bitrateKbps float64) float64 {
	return bitrateKbps * 1000 / game.FrameRate
}

// PacketsPerFrame is how many network packets a frame is split into;
// delivery latency is judged per packet (the paper's continuity metric
// counts packets, not frames).
const PacketsPerFrame = 4

// PacketBits returns the size of one packet of a frame at the given
// bitrate.
func PacketBits(bitrateKbps float64) float64 {
	return FrameBits(bitrateKbps) / PacketsPerFrame
}

// maxUtilization caps the load factor used for jitter amplification: past
// ~90% utilization real transports shed load (frames are dropped, modeled
// separately by the deliverable-fraction cap) rather than queueing without
// bound, so the M/M/1 term is clamped to a 10x amplification.
const maxUtilization = 0.9

// utilization returns the stream's share of the link, clamped to
// [0, maxUtilization] for the queueing-delay computation.
func utilization(bitrateKbps, effectiveKbps float64) float64 {
	if effectiveKbps <= 0 {
		return maxUtilization
	}
	u := bitrateKbps / effectiveKbps
	if u > maxUtilization {
		return maxUtilization
	}
	if u < 0 {
		return 0
	}
	return u
}

// OnTimeProbability returns the probability that one frame of a stream
// encoded at bitrateKbps arrives within requirementMs of NETWORK response
// latency over the given link. Per the paper's budget split (100 ms total =
// 20 ms playout/processing + 80 ms network), Table 2 latency requirements
// are network budgets, so client playout is excluded here; callers add
// PlayoutDelayMs when reporting total response latency. The network latency
// of a frame is
//
//	one-way latency + transmission + queueing jitter
//
// with the jitter exponential of mean BaseJitterMs / (1 − utilization)
// (an M/M/1-style load amplification). When the link cannot sustain the
// bitrate at all (EffectiveKbps <= bitrate), the on-time fraction is
// additionally capped by the deliverable fraction EffectiveKbps/bitrate.
func OnTimeProbability(link Link, bitrateKbps, requirementMs float64) float64 {
	if bitrateKbps <= 0 {
		return 1
	}
	if link.EffectiveKbps <= 0 {
		return 0
	}
	baseJitter := link.BaseJitterMs
	if baseJitter <= 0 {
		baseJitter = DefaultBaseJitterMs
	}
	transMs := PacketBits(bitrateKbps) / link.EffectiveKbps
	base := link.OneWayMs + transMs
	slack := requirementMs - base
	if slack <= 0 {
		return 0
	}
	u := utilization(bitrateKbps, link.EffectiveKbps)
	jitterMean := baseJitter / (1 - u)
	p := 1 - math.Exp(-slack/jitterMean)
	// Undeliverable fraction when the link is saturated.
	if link.EffectiveKbps < bitrateKbps {
		p *= link.EffectiveKbps / bitrateKbps
	}
	return p
}

// NetworkLatencyMs returns the expected network response latency of a frame
// over the link: one-way + transmission + mean jitter. Core adds
// PlayoutDelayMs plus its action/update/server-communication overheads when
// reporting the total response latency Fig. 7 averages.
func NetworkLatencyMs(link Link, bitrateKbps float64) float64 {
	if link.EffectiveKbps <= 0 {
		return math.Inf(1)
	}
	baseJitter := link.BaseJitterMs
	if baseJitter <= 0 {
		baseJitter = DefaultBaseJitterMs
	}
	u := utilization(bitrateKbps, link.EffectiveKbps)
	transMs := PacketBits(bitrateKbps) / link.EffectiveKbps
	return link.OneWayMs + transMs + baseJitter/(1-u)
}

// PrefetchFactor is how far above real-time the sender paces segment
// delivery while the receiver's buffer has room: up to 2x the encoding
// bitrate, bounded by the link. Without prefetch the buffer could never
// build and the buffer-based adjustment rules of §3.3 would see a
// perpetually empty buffer.
const PrefetchFactor = 2.0

// DeliveredKbps returns d(t_k), the segment download rate the receiver
// observes (Eq. 8): the link's effective bandwidth, capped at the sender's
// prefetch pacing of PrefetchFactor times the encoding bitrate.
func DeliveredKbps(link Link, bitrateKbps float64) float64 {
	pace := PrefetchFactor * bitrateKbps
	if link.EffectiveKbps < pace {
		return link.EffectiveKbps
	}
	return pace
}

// Meter accumulates a session's delivery quality across evaluation
// intervals, weighted by interval duration.
type Meter struct {
	onTimeWeighted  float64
	latencyWeighted float64
	weight          float64
}

// Observe records one evaluation interval of the given duration (any
// consistent unit) with per-frame on-time probability p and expected
// response latency latencyMs.
func (m *Meter) Observe(duration, p, latencyMs float64) {
	if duration <= 0 {
		return
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	m.onTimeWeighted += duration * p
	m.latencyWeighted += duration * latencyMs
	m.weight += duration
}

// Continuity returns the session's playback continuity: the duration-
// weighted on-time fraction. Returns 0 when nothing was observed.
func (m *Meter) Continuity() float64 {
	if m.weight == 0 {
		return 0
	}
	return m.onTimeWeighted / m.weight
}

// MeanLatencyMs returns the duration-weighted mean response latency.
func (m *Meter) MeanLatencyMs() float64 {
	if m.weight == 0 {
		return 0
	}
	return m.latencyWeighted / m.weight
}

// Satisfied reports whether the session meets the 95% on-time bar.
func (m *Meter) Satisfied() bool {
	return m.weight > 0 && m.Continuity() >= SatisfactionThreshold
}

// Observed reports whether the meter has recorded any interval.
func (m *Meter) Observed() bool { return m.weight > 0 }
