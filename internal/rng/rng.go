// Package rng provides a deterministic, splittable random number generator
// and the distribution samplers used throughout the CloudFog simulator.
//
// Every stochastic component in the simulator takes an explicit *Rand so
// that experiment results are reproducible bit-for-bit from a seed. Rand
// wraps math/rand's PCG-free source with a SplitMix64-style stream deriver
// so that independent subsystems (workload, network jitter, churn, ...) can
// draw from statistically independent streams derived from one master seed.
package rng

import (
	"math"
	"math/rand"
)

// Rand is a deterministic random source with distribution helpers.
// It is NOT safe for concurrent use; derive one per goroutine with Split.
type Rand struct {
	src *rand.Rand
	// cnt is the draw-counting source feeding src; its tally is what
	// State captures and Restore replays.
	cnt *countingSource
	// seed retains the construction seed so Split can derive child streams.
	seed uint64
	// splits counts how many children have been derived, making every
	// Split call produce a distinct stream.
	splits uint64
}

// splitmixSource is a SplitMix64 generator exposed as a rand.Source64.
//
// It replaced math/rand's default lagged-Fibonacci source when profiling
// showed the simulator spending ~65% of its CPU inside rngSource.Seed: the
// hot loops derive a fresh keyed stream per (player, tick) decision (see
// core.decisionRand and netmodel.CongestionFactor), and the stock source
// pays a 607-entry seed expansion plus a ~5 KB allocation per derivation.
// SplitMix64 seeds in O(1), carries 8 bytes of state, and advances exactly
// one step per draw — which also makes checkpoint restore O(1): the state
// after n draws is seed + n·gamma (see state.go).
//
// The distribution helpers still go through math/rand.Rand, so Intn,
// NormFloat64, ExpFloat64, Perm, and Shuffle keep their stock algorithms;
// only the raw 64-bit stream underneath changed.
type splitmixSource struct {
	s uint64
}

// gamma is the SplitMix64 state increment (the golden-ratio constant).
const gamma = 0x9e3779b97f4a7c15

func (s *splitmixSource) Uint64() uint64 {
	s.s += gamma
	z := s.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmixSource) Seed(seed int64) { s.s = uint64(seed) }

// New returns a Rand seeded with seed. Both literals escape New itself,
// but New inlines into its hot callers (the keyed per-draw streams in
// netmodel), where escape analysis keeps them on the stack — the
// eval-phase AllocsPerRun gates pin the whole path at zero.
func New(seed uint64) *Rand {
	//lint:ignore allocfree stack-allocated after inlining; gate-proven zero on the eval path
	cnt := &countingSource{src: splitmixSource{s: mix(seed)}}
	//lint:ignore allocfree stack-allocated after inlining; gate-proven zero on the eval path
	return &Rand{
		src:  rand.New(cnt),
		cnt:  cnt,
		seed: seed,
	}
}

// Reseed resets r in place to exactly the state New(seed) returns, without
// allocating. Hot loops that derive a fresh keyed stream per item (one per
// player-tick decision) reuse one scratch Rand through Reseed instead of
// paying rng.New's three allocations each time. The subsequent draw sequence
// is identical to a fresh Rand's: math/rand.Rand keeps no per-instance
// distribution state (the ziggurat tables are global, and the Read buffer is
// untouched because the simulator never calls Read).
func (r *Rand) Reseed(seed uint64) {
	r.cnt.src.s = mix(seed)
	r.cnt.draws = 0
	r.seed = seed
	r.splits = 0
}

// Split derives a new, statistically independent Rand from r. Successive
// calls yield distinct streams. The parent stream is not perturbed, so a
// fixed sequence of Split calls is itself deterministic.
func (r *Rand) Split() *Rand {
	r.splits++
	return New(mix(r.seed ^ (r.splits * 0x9e3779b97f4a7c15)))
}

// SplitNamed derives a child stream keyed by a stable name, so that adding
// new consumers does not disturb the streams of existing ones.
func (r *Rand) SplitNamed(name string) *Rand {
	h := r.seed
	for _, c := range []byte(name) {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	return New(mix(h))
}

// mix is the SplitMix64 finalizer; it decorrelates nearby seeds.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform sample in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (r *Rand) Int63() int64 { return r.src.Int63() }

// Uniform returns a uniform sample in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Bool returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.src.Float64() < p
}

// NormFloat64 returns a standard-normal sample.
func (r *Rand) NormFloat64() float64 { return r.src.NormFloat64() }

// Normal returns a normal sample with the given mean and standard deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.src.NormFloat64()
}

// Exponential returns an exponential sample with the given mean. The mean
// must be positive.
func (r *Rand) Exponential(mean float64) float64 {
	return r.src.ExpFloat64() * mean
}

// Pareto returns a sample from a Pareto distribution with minimum value
// xm > 0 and shape alpha > 0. The paper uses Pareto-distributed supernode
// capacities (alpha = 2) and node capacities (alpha = 1, mean 5).
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.src.Float64()
	// Guard the open interval: Float64 may return exactly 0.
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return xm / math.Pow(u, 1/alpha)
}

// Poisson returns a Poisson sample with the given mean (lambda >= 0).
// Knuth's algorithm is used for small lambda and a normal approximation
// (rounded, clamped at zero) for large lambda.
func (r *Rand) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		n := math.Round(r.Normal(lambda, math.Sqrt(lambda)))
		if n < 0 {
			return 0
		}
		return int(n)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.src.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf returns a sample in [1, n] following a Zipf (power-law) distribution
// with skew s > 0. Used for friend counts (skew 1.5 per the paper).
func (r *Rand) Zipf(n int, s float64) int {
	if n <= 1 {
		return 1
	}
	// Inverse-CDF over the discrete normalized weights. n is small in our
	// usage (max friends per player), so a linear scan is fine.
	var total float64
	for k := 1; k <= n; k++ {
		total += 1 / math.Pow(float64(k), s)
	}
	u := r.src.Float64() * total
	var acc float64
	for k := 1; k <= n; k++ {
		acc += 1 / math.Pow(float64(k), s)
		if u < acc {
			return k
		}
	}
	return n
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements via swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Weighted is a discrete distribution sampled by cumulative weight.
type Weighted struct {
	values  []float64
	cumulat []float64
	total   float64
}

// NewWeighted builds a weighted sampler over parallel value/weight slices.
// All weights must be non-negative and at least one must be positive;
// otherwise NewWeighted returns nil.
func NewWeighted(values, weights []float64) *Weighted {
	if len(values) != len(weights) || len(values) == 0 {
		return nil
	}
	w := &Weighted{
		values:  append([]float64(nil), values...),
		cumulat: make([]float64, len(weights)),
	}
	for i, wt := range weights {
		if wt < 0 {
			return nil
		}
		w.total += wt
		w.cumulat[i] = w.total
	}
	if w.total <= 0 {
		return nil
	}
	return w
}

// Sample draws one value according to the weights.
func (w *Weighted) Sample(r *Rand) float64 {
	u := r.Float64() * w.total
	// Binary search over the cumulative weights.
	lo, hi := 0, len(w.cumulat)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if u < w.cumulat[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return w.values[lo]
}

// Len returns the number of support points.
func (w *Weighted) Len() int { return len(w.values) }
