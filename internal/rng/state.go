package rng

// countingSource feeds a Rand while tallying every raw draw taken from the
// underlying SplitMix64 source. The tally is the only extra state needed to
// checkpoint a stream: a Rand is fully determined by (seed, splits, draws),
// and because SplitMix64 advances its 8-byte state by a fixed increment per
// draw, restoring is a single O(1) jump rather than a replay.
//
// countingSource implements rand.Source64: math/rand.Rand then takes every
// 64-bit draw through Uint64 and every 63-bit draw through Int63, and both
// advance the underlying state by exactly one step, so `draws` equals the
// number of state steps taken — the quantity the restore jump needs.
type countingSource struct {
	src   splitmixSource
	draws uint64
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// State is a serializable snapshot of a Rand's stream position. It is
// deliberately tiny — three words — rather than the generator's internal
// vector: a Rand is a pure function of (seed, splits, draws).
type State struct {
	// Seed is the construction seed.
	Seed uint64
	// Splits is how many child streams have been derived.
	Splits uint64
	// Draws is how many raw samples have been consumed.
	Draws uint64
}

// State captures the stream position for checkpointing.
func (r *Rand) State() State {
	return State{Seed: r.seed, Splits: r.splits, Draws: r.cnt.draws}
}

// Restore reconstructs a Rand at the exact stream position captured by st:
// the next sample drawn equals the next sample the captured Rand would
// have drawn, for every distribution helper. The SplitMix64 state after n
// draws is mix(seed) + n·gamma, so restore is O(1) in the draw count.
func Restore(st State) *Rand {
	r := New(st.Seed)
	r.splits = st.Splits
	r.cnt.src.s += st.Draws * gamma
	r.cnt.draws = st.Draws
	return r
}
