package rng

import "math/rand"

// countingSource feeds a Rand while tallying every raw 63-bit draw taken
// from the underlying source. The tally is the only extra state needed to
// checkpoint a stream: a Rand is fully determined by (seed, splits, draws),
// and restoring means re-seeding and discarding the same number of draws.
//
// countingSource deliberately implements only rand.Source (not Source64):
// math/rand then composes Uint64 from two Int63 calls, which is exactly
// how the wrapped rngSource implements Uint64 itself, so the output stream
// is bit-identical to wrapping the source directly — and every state
// advance funnels through Int63 where it is counted exactly once.
type countingSource struct {
	src   rand.Source
	draws uint64
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// State is a serializable snapshot of a Rand's stream position. It is
// deliberately tiny — three words — rather than the generator's internal
// vector: restore cost is O(draws), which is fine for the control-plane
// streams that get checkpointed (a cloud ladder ranking draws a handful of
// samples per failover, not per tick).
type State struct {
	// Seed is the construction seed.
	Seed uint64
	// Splits is how many child streams have been derived.
	Splits uint64
	// Draws is how many raw 63-bit samples have been consumed.
	Draws uint64
}

// State captures the stream position for checkpointing.
func (r *Rand) State() State {
	return State{Seed: r.seed, Splits: r.splits, Draws: r.cnt.draws}
}

// Restore reconstructs a Rand at the exact stream position captured by st:
// the next sample drawn equals the next sample the captured Rand would
// have drawn, for every distribution helper.
func Restore(st State) *Rand {
	r := New(st.Seed)
	r.splits = st.Splits
	for i := uint64(0); i < st.Draws; i++ {
		r.cnt.Int63()
	}
	return r
}
