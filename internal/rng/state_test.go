package rng

import (
	"math/rand"
	"testing"
)

// TestCountingSourcePreservesOutput pins that the draw-counting wrapper
// does not perturb the stream: a Rand must produce exactly the sequence of
// a bare math/rand generator over the same SplitMix64 source, across every
// helper (including Uint64-composing ones like Shuffle and Perm).
func TestCountingSourcePreservesOutput(t *testing.T) {
	r := New(42)
	ref := rand.New(&splitmixSource{s: mix(42)})
	for i := 0; i < 200; i++ {
		switch i % 5 {
		case 0:
			if got, want := r.Float64(), ref.Float64(); got != want {
				t.Fatalf("Float64 #%d: %v != %v", i, got, want)
			}
		case 1:
			if got, want := r.Int63(), ref.Int63(); got != want {
				t.Fatalf("Int63 #%d: %v != %v", i, got, want)
			}
		case 2:
			if got, want := r.NormFloat64(), ref.NormFloat64(); got != want {
				t.Fatalf("NormFloat64 #%d: %v != %v", i, got, want)
			}
		case 3:
			got, want := r.Perm(7), ref.Perm(7)
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("Perm #%d: %v != %v", i, got, want)
				}
			}
		case 4:
			if got, want := r.Intn(1000), ref.Intn(1000); got != want {
				t.Fatalf("Intn #%d: %v != %v", i, got, want)
			}
		}
	}
}

// TestStateRestoreResumesStream checks the checkpoint/restore contract:
// after an arbitrary mixed draw history, a restored Rand continues with
// exactly the samples the original would have produced next.
func TestStateRestoreResumesStream(t *testing.T) {
	r := New(7)
	_ = r.Split()
	_ = r.SplitNamed("ladder")
	for i := 0; i < 137; i++ {
		switch i % 6 {
		case 0:
			r.Float64()
		case 1:
			r.Exponential(3)
		case 2:
			r.Poisson(12)
		case 3:
			r.Zipf(9, 1.5)
		case 4:
			r.Normal(5, 2)
		case 5:
			r.Shuffle(5, func(i, j int) {})
		}
	}

	st := r.State()
	restored := Restore(st)

	for i := 0; i < 100; i++ {
		if got, want := restored.Float64(), r.Float64(); got != want {
			t.Fatalf("restored stream diverged at %d: %v != %v", i, got, want)
		}
	}

	// Split lineage must be preserved too: the next Split of both streams
	// must derive the same child.
	if got, want := restored.Split().Float64(), r.Split().Float64(); got != want {
		t.Fatalf("restored Split child diverged: %v != %v", got, want)
	}
}

// TestStateRoundTripIsStable checks State is a pure value: capturing twice
// without drawing yields identical states, and restoring does not perturb
// the captured position.
func TestStateRoundTripIsStable(t *testing.T) {
	r := New(99)
	r.Float64()
	a := r.State()
	b := r.State()
	if a != b {
		t.Fatalf("State not idempotent: %+v vs %+v", a, b)
	}
	if got := Restore(a).State(); got != a {
		t.Fatalf("Restore moved the stream: %+v vs %+v", got, a)
	}
}
