package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("same-seed streams diverged at %d: %v vs %v", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical samples of 100", same)
	}
}

func TestSplitIndependentAndDeterministic(t *testing.T) {
	a := New(7)
	c1 := a.Split()
	c2 := a.Split()
	if c1.Float64() == c2.Float64() {
		t.Error("successive Split children produced identical first samples")
	}
	// Reconstruct: the same Split sequence from the same seed must yield
	// the same child streams.
	b := New(7)
	d1 := b.Split()
	d2 := b.Split()
	e1 := New(7).Split()
	_ = d2
	if got, want := d1, e1; got.Float64() != want.Float64() {
		t.Error("Split is not deterministic across identically-seeded parents")
	}
}

// TestSplitSiblingsUncorrelated bounds the sample correlation between two
// sibling Split streams. The parallel tick workers each draw from their own
// shard stream, and determinism plus statistical validity both rest on the
// siblings behaving as independent generators.
func TestSplitSiblingsUncorrelated(t *testing.T) {
	parent := New(123)
	a := parent.Split()
	b := parent.Split()
	const n = 20000
	var sumA, sumB, sumAA, sumBB, sumAB float64
	for i := 0; i < n; i++ {
		x, y := a.Float64(), b.Float64()
		sumA += x
		sumB += y
		sumAA += x * x
		sumBB += y * y
		sumAB += x * y
	}
	meanA, meanB := sumA/n, sumB/n
	cov := sumAB/n - meanA*meanB
	varA := sumAA/n - meanA*meanA
	varB := sumBB/n - meanB*meanB
	corr := cov / math.Sqrt(varA*varB)
	// For truly independent uniforms the sample correlation is
	// ~Normal(0, 1/sqrt(n)) ≈ 0.007; 0.05 is a 7-sigma bound.
	if math.Abs(corr) > 0.05 {
		t.Fatalf("sibling Split streams correlate: r=%v over %d samples", corr, n)
	}
}

// TestSplitNamedSiblingsUncorrelated applies the same bound to two named
// child streams, which subsystems (workload vs. network vs. churn) rely on
// for cross-subsystem independence from one master seed.
func TestSplitNamedSiblingsUncorrelated(t *testing.T) {
	parent := New(123)
	a := parent.SplitNamed("workload")
	b := parent.SplitNamed("network")
	const n = 20000
	var sumA, sumB, sumAA, sumBB, sumAB float64
	for i := 0; i < n; i++ {
		x, y := a.Float64(), b.Float64()
		sumA += x
		sumB += y
		sumAA += x * x
		sumBB += y * y
		sumAB += x * y
	}
	meanA, meanB := sumA/n, sumB/n
	cov := sumAB/n - meanA*meanB
	varA := sumAA/n - meanA*meanA
	varB := sumBB/n - meanB*meanB
	corr := cov / math.Sqrt(varA*varB)
	if math.Abs(corr) > 0.05 {
		t.Fatalf("named sibling streams correlate: r=%v over %d samples", corr, n)
	}
}

// TestSplitNamedOrderIndependent documents the splitting-order contract:
// SplitNamed is keyed only by (parent seed, name), so the order in which
// named children are derived — or how many Split children were taken in
// between — cannot change a named child's stream. Parallel shard setup
// depends on this: workers may derive their streams in any order.
func TestSplitNamedOrderIndependent(t *testing.T) {
	a := New(77)
	ax := a.SplitNamed("x")
	_ = a.Split()
	ay := a.SplitNamed("y")

	b := New(77)
	by := b.SplitNamed("y")
	bx := b.SplitNamed("x")

	for i := 0; i < 50; i++ {
		if got, want := bx.Float64(), ax.Float64(); got != want {
			t.Fatalf("SplitNamed(\"x\") depends on derivation order: %v != %v", got, want)
		}
		if got, want := by.Float64(), ay.Float64(); got != want {
			t.Fatalf("SplitNamed(\"y\") depends on derivation order: %v != %v", got, want)
		}
	}
}

// TestSplitOrderContract documents the Split contract: the k-th Split child
// of a given seed is a fixed stream, regardless of draws taken from the
// parent in between.
func TestSplitOrderContract(t *testing.T) {
	a := New(5)
	a1, a2 := a.Split(), a.Split()

	b := New(5)
	b1 := b.Split()
	for i := 0; i < 100; i++ {
		b.Float64() // parent draws must not shift the split sequence
	}
	b2 := b.Split()

	for i := 0; i < 50; i++ {
		if got, want := b1.Float64(), a1.Float64(); got != want {
			t.Fatalf("first Split child not a pure function of (seed, index): %v != %v", got, want)
		}
		if got, want := b2.Float64(), a2.Float64(); got != want {
			t.Fatalf("second Split child shifted by parent draws: %v != %v", got, want)
		}
	}
}

func TestSplitNamedStable(t *testing.T) {
	a := New(9).SplitNamed("workload")
	b := New(9).SplitNamed("workload")
	c := New(9).SplitNamed("network")
	av, bv, cv := a.Float64(), b.Float64(), c.Float64()
	if av != bv {
		t.Errorf("same-name children differ: %v vs %v", av, bv)
	}
	if av == cv {
		t.Errorf("different-name children coincide: %v", av)
	}
}

func TestSplitNamedDoesNotPerturbParent(t *testing.T) {
	a := New(11)
	b := New(11)
	_ = a.SplitNamed("x")
	if av, bv := a.Float64(), b.Float64(); av != bv {
		t.Errorf("SplitNamed perturbed the parent stream: %v vs %v", av, bv)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Uniform(10,20) = %v out of range", v)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(4)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.02 {
		t.Errorf("Bool(0.3) empirical rate %v", p)
	}
}

func TestParetoProperties(t *testing.T) {
	// Property: Pareto(xm, alpha) >= xm always.
	f := func(seed uint64, u8 uint8) bool {
		r := New(seed)
		xm := 1 + float64(u8%50)
		alpha := 0.5 + float64(u8%4)
		for i := 0; i < 50; i++ {
			if r.Pareto(xm, alpha) < xm {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParetoMean(t *testing.T) {
	// For alpha=2, xm=1: mean = alpha*xm/(alpha-1) = 2.
	r := New(6)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Pareto(1, 2)
	}
	mean := sum / n
	if mean < 1.8 || mean > 2.3 {
		t.Errorf("Pareto(1,2) empirical mean %v, want ~2", mean)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, lambda := range []float64{0.5, 3, 20, 100, 500} {
		r := New(uint64(lambda * 13))
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.2 {
			t.Errorf("Poisson(%v) empirical mean %v", lambda, mean)
		}
	}
}

func TestPoissonEdge(t *testing.T) {
	r := New(8)
	if got := r.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d", got)
	}
	if got := r.Poisson(-3); got != 0 {
		t.Errorf("Poisson(-3) = %d", got)
	}
}

func TestZipfRangeProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := New(seed)
		for i := 0; i < 30; i++ {
			v := r.Zipf(n, 1.5)
			if v < 1 || v > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfSkew(t *testing.T) {
	// Rank 1 must be the most frequent outcome.
	r := New(10)
	counts := make([]int, 11)
	for i := 0; i < 50000; i++ {
		counts[r.Zipf(10, 1.5)]++
	}
	for k := 2; k <= 10; k++ {
		if counts[k] > counts[1] {
			t.Fatalf("Zipf rank %d (%d) more frequent than rank 1 (%d)", k, counts[k], counts[1])
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Exponential(5)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.2 {
		t.Errorf("Exponential(5) empirical mean %v", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(12)
	var sum, sum2 float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("Normal(10,3) empirical mean %v", mean)
	}
	if math.Abs(std-3) > 0.1 {
		t.Errorf("Normal(10,3) empirical std %v", std)
	}
}

func TestWeightedValidation(t *testing.T) {
	if w := NewWeighted(nil, nil); w != nil {
		t.Error("empty weighted sampler should be nil")
	}
	if w := NewWeighted([]float64{1}, []float64{1, 2}); w != nil {
		t.Error("mismatched lengths should be nil")
	}
	if w := NewWeighted([]float64{1, 2}, []float64{0, 0}); w != nil {
		t.Error("all-zero weights should be nil")
	}
	if w := NewWeighted([]float64{1, 2}, []float64{1, -1}); w != nil {
		t.Error("negative weight should be nil")
	}
	if w := NewWeighted([]float64{1, 2}, []float64{1, 3}); w == nil || w.Len() != 2 {
		t.Error("valid sampler rejected")
	}
}

func TestWeightedDistribution(t *testing.T) {
	w := NewWeighted([]float64{1, 2, 3}, []float64{0.2, 0.3, 0.5})
	r := New(13)
	counts := map[float64]int{}
	const n = 60000
	for i := 0; i < n; i++ {
		counts[w.Sample(r)]++
	}
	for v, want := range map[float64]float64{1: 0.2, 2: 0.3, 3: 0.5} {
		got := float64(counts[v]) / n
		if math.Abs(got-want) > 0.015 {
			t.Errorf("value %v frequency %v, want ~%v", v, got, want)
		}
	}
}

func TestWeightedSampleOnlySupportValues(t *testing.T) {
	w := NewWeighted([]float64{7, 11}, []float64{1, 0})
	r := New(14)
	for i := 0; i < 1000; i++ {
		if got := w.Sample(r); got != 7 {
			t.Fatalf("zero-weight value sampled: %v", got)
		}
	}
}

func TestPermAndShuffle(t *testing.T) {
	r := New(15)
	p := r.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm(10) invalid: %v", p)
		}
		seen[v] = true
	}
	xs := []int{1, 2, 3, 4, 5}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 15 {
		t.Errorf("Shuffle changed multiset: %v", xs)
	}
}

func TestReseedMatchesFresh(t *testing.T) {
	// Reseed must put a used Rand into exactly the state New would produce:
	// this is what lets hot loops reuse one scratch generator for per-item
	// keyed streams without changing any seeded output.
	scratch := New(1)
	scratch.Float64()
	scratch.NormFloat64()
	scratch.Split()
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		fresh := New(seed)
		scratch.Reseed(seed)
		for i := 0; i < 8; i++ {
			if a, b := fresh.Float64(), scratch.Float64(); a != b {
				t.Fatalf("seed %d draw %d: fresh %v, reseeded %v", seed, i, a, b)
			}
		}
		if a, b := fresh.NormFloat64(), scratch.NormFloat64(); a != b {
			t.Fatalf("seed %d: NormFloat64 fresh %v, reseeded %v", seed, a, b)
		}
		if a, b := fresh.Intn(1000), scratch.Intn(1000); a != b {
			t.Fatalf("seed %d: Intn fresh %v, reseeded %v", seed, a, b)
		}
		// Checkpoint state and child-stream derivation reset too.
		if fresh.State() != scratch.State() {
			t.Fatalf("seed %d: state fresh %+v, reseeded %+v", seed, fresh.State(), scratch.State())
		}
		if a, b := fresh.Split().Float64(), scratch.Split().Float64(); a != b {
			t.Fatalf("seed %d: Split child fresh %v, reseeded %v", seed, a, b)
		}
	}
}
