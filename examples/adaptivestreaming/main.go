// Adaptive streaming demo: the receiver-driven encoding rate adaptation of
// §3.3, shown on a single session whose network path degrades and recovers.
//
// The controller watches the playback buffer: when the download rate falls
// behind (network congestion), the buffer drains below θ/ρ and the encoder
// steps down the Table 2 ladder — "users may prefer fluent play of the game
// though the game video gets a bit blur". When headroom returns, the buffer
// refills past (1+β)/ρ and quality climbs back.
//
// Run with:
//
//	go run ./examples/adaptivestreaming
package main

import (
	"fmt"
	"strings"

	"cloudfog/internal/adaptation"
	"cloudfog/internal/game"
	"cloudfog/internal/streaming"
)

func main() {
	// A latency-tolerant MMORPG at the top quality rung.
	g := game.Catalog()[4]
	ctrl := adaptation.NewController(adaptation.Config{
		Theta:    0.5,
		Rho:      g.ToleranceDegree,
		MaxLevel: g.DefaultQuality,
	}, g.DefaultQuality)

	// The link's effective bandwidth over time: healthy, congested (a
	// deep dip), then recovered.
	phase := func(sec float64) (string, float64) {
		switch {
		case sec < 60:
			return "healthy", 5000
		case sec < 180:
			return "congested", 900
		default:
			return "recovered", 6000
		}
	}

	fmt.Printf("game %q: default quality L%d (%s, %.0f kbps), tolerance ρ=%.1f\n\n",
		g.Name, g.DefaultQuality, g.Quality().Resolution, g.Quality().BitrateKbps, g.ToleranceDegree)
	fmt.Println("time   phase       link    level  bitrate  buffer  on-time  event")

	var lastLevel game.QualityLevel
	for sec := 5.0; sec <= 300; sec += 5 {
		name, kbps := phase(sec)
		link := streaming.Link{OneWayMs: 12, EffectiveKbps: kbps}
		decision := ctrl.Observe(sec, streaming.DeliveredKbps(link, ctrl.BitrateKbps()))
		pOn := streaming.OnTimeProbability(link, ctrl.BitrateKbps(), g.LatencyRequirementMs)

		event := ""
		if decision != adaptation.Hold {
			event = fmt.Sprintf("switch %s to L%d", decision, ctrl.Level())
		}
		if ctrl.Level() != lastLevel || event != "" || int(sec)%30 == 0 {
			fmt.Printf("%4.0fs  %-10s %5.0fk   L%d    %5.0fk   %4.1fs   %5.1f%%  %s\n",
				sec, name, kbps, ctrl.Level(), ctrl.BitrateKbps(),
				ctrl.BufferedSegments(), 100*pOn, event)
		}
		lastLevel = ctrl.Level()
	}

	fmt.Println()
	fmt.Printf("total bitrate switches: %d (debounced — no oscillation)\n", ctrl.Switches())
	fmt.Println(strings.Repeat("-", 60))
	fmt.Println("Sacrificing quality for lower latency keeps playback continuous")
	fmt.Println("through the dip; the ladder climbs back once the path recovers.")
}
