// Social guild demo: the social-network-based server assignment of §3.4.
//
// A guild-structured MMOG population is partitioned onto game servers three
// ways — randomly, with the paper's greedy+swap algorithm, and with the
// full polished pipeline — and the program reports the modularity Γ, the
// fraction of friendships that end up cross-server, and the resulting
// expected server-communication latency per interaction.
//
// Run with:
//
//	go run ./examples/socialguild
package main

import (
	"fmt"
	"log"

	"cloudfog/internal/assignment"
	"cloudfog/internal/cloudinfra"
	"cloudfog/internal/rng"
	"cloudfog/internal/social"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		players = 2500
		servers = 50
	)
	r := rng.New(7)
	g := social.Generate(social.GenerateConfig{
		N:    players,
		Skew: 1.5, // the paper's power-law friend counts
	}, r)
	fmt.Printf("population: %d players, %d friendships (mean degree %.1f), %d servers\n\n",
		players, g.NumEdges(), float64(2*g.NumEdges())/players, servers)

	report := func(name string, community []int, gamma float64) {
		cross := assignment.CrossServerFraction(g, community)
		// Expected per-interaction server communication latency: friends
		// on the same server exchange state locally, others pay a
		// synchronization round.
		commMs := (1-cross)*cloudinfra.IntraServerCommMs + cross*cloudinfra.CrossServerCommMs
		fmt.Printf("%-24s Γ=%6.3f  cross-server friendships %5.1f%%  => server latency %5.1f ms\n",
			name, gamma, 100*cross, commMs)
	}

	random := assignment.Random(players, servers, r)
	report("random assignment", random, social.Modularity(g, random, servers))

	greedy, err := assignment.Assign(g, assignment.Config{
		Servers: servers, SkipRefinement: true, PolishSweeps: -1,
	}, rng.New(8))
	if err != nil {
		return err
	}
	report("greedy (paper steps 1-4)", greedy.Community, greedy.Modularity)

	refined, err := assignment.Assign(g, assignment.Config{
		Servers: servers, PolishSweeps: -1,
	}, rng.New(8))
	if err != nil {
		return err
	}
	report("+ swap refinement (5-6)", refined.Community, refined.Modularity)

	full, err := assignment.Assign(g, assignment.Config{Servers: servers}, rng.New(8))
	if err != nil {
		return err
	}
	report("+ label-prop polish", full.Community, full.Modularity)

	fmt.Println()
	fmt.Println("Interacting friends on one server avoid the inter-server round trip —")
	fmt.Println("the ~20 ms response-latency reduction of the paper's Fig. 12.")
	return nil
}
