// Chaos demo: the CloudFog prototype surviving the failures §3.2 worries
// about, with every fault injected deterministically through
// internal/faultnet (same seed, same run).
//
// The script:
//
//  1. Boot the three tiers and stream normally for a moment.
//  2. Partition fog-alpha from the cloud (a blackhole: packets vanish,
//     sockets stay open). Only the liveness protocol can see this — the
//     cloud misses heartbeat acks and evicts the supernode, then pushes a
//     refreshed failover ladder to every player.
//  3. Heal the partition. Fog-alpha observes the dead connection, redials
//     with jittered exponential backoff, and resyncs its replica from the
//     welcome snapshot.
//  4. Kill whichever supernode is serving the player outright. The
//     player's video read deadline fires and it walks the failover ladder
//     to the surviving supernode, with the downtime accounted as stall.
//  5. Crash the cloud primary itself. A warm standby that has been
//     following the checkpoint/log stream promotes itself one epoch up,
//     and the surviving supernode and the player resume their sessions
//     on it (MsgResume) without a full rejoin.
//  6. Print the resilience counters from all three tiers.
//
// Run with:
//
//	go run ./examples/chaos [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"cloudfog/internal/faultnet"
	"cloudfog/internal/fognet"
)

func main() {
	seed := flag.Uint64("seed", 7, "deterministic fault-injection seed")
	flag.Parse()
	if err := run(*seed); err != nil {
		log.Fatal(err)
	}
}

func run(seed uint64) error {
	cloud, err := fognet.NewCloudServer(fognet.CloudConfig{
		TickInterval:      20 * time.Millisecond,
		NPCs:              6,
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatMisses:   3,
	})
	if err != nil {
		return err
	}
	defer cloud.Close()
	fmt.Printf("cloud    : authoritative world on %s (evicts after 3 missed 100ms heartbeats)\n",
		cloud.Addr())

	// fog-alpha reaches the cloud through the fault injector: a realistic
	// link (2ms +/- jitter) that we can partition at will.
	inj := faultnet.NewInjector(faultnet.Profile{
		Seed:          seed,
		AddedLatency:  2 * time.Millisecond,
		LatencyJitter: time.Millisecond,
	})
	alpha, err := fognet.NewFogNode(fognet.FogConfig{
		Name: "fog-alpha", CloudAddr: cloud.Addr(), Capacity: 2,
		FrameInterval:    33 * time.Millisecond,
		ReconnectBackoff: 100 * time.Millisecond,
		Seed:             seed,
		Dial:             inj.Dial,
	})
	if err != nil {
		return err
	}
	defer alpha.Close()
	beta, err := fognet.NewFogNode(fognet.FogConfig{
		Name: "fog-beta", CloudAddr: cloud.Addr(), Capacity: 2,
		FrameInterval: 33 * time.Millisecond,
		Seed:          seed + 1,
	})
	if err != nil {
		return err
	}
	defer beta.Close()
	fogs := map[string]*fognet.FogNode{"fog-alpha": alpha, "fog-beta": beta}
	fmt.Printf("supernode: \"fog-alpha\" on %s (cloud link via fault injector)\n", alpha.StreamAddr())
	fmt.Printf("supernode: \"fog-beta\"  on %s\n", beta.StreamAddr())

	player, err := fognet.NewPlayerClient(fognet.PlayerConfig{
		PlayerID:         1,
		CloudAddr:        cloud.Addr(),
		VideoReadTimeout: 250 * time.Millisecond,
		Seed:             seed,
	})
	if err != nil {
		return err
	}
	defer player.Close()

	fmt.Println("\n--- phase 1: normal streaming ---")
	time.Sleep(2 * time.Second)
	serving := servingFog(fogs)
	fmt.Printf("player 1 : %d frames decoded, world tick %d, served by %q\n",
		player.Stats().Frames, player.Stats().LastTick, serving)

	fmt.Println("\n--- phase 2: partition fog-alpha from the cloud (blackhole) ---")
	inj.SetMode(faultnet.Blackhole)
	if !waitUntil(5*time.Second, func() bool {
		return cloud.Stats().Resilience.Evictions >= 1
	}) {
		return fmt.Errorf("cloud never evicted the partitioned supernode")
	}
	cs := cloud.Stats()
	fmt.Printf("cloud    : missed heartbeat acks -> evicted fog-alpha (evictions=%d, supernodes=%d)\n",
		cs.Resilience.Evictions, cs.Supernodes)
	fmt.Printf("cloud    : pushed refreshed failover ladder to players (updates=%d)\n",
		cs.Resilience.CandidateUpdates)
	fmt.Printf("player 1 : candidate updates received=%d, still decoding (frames=%d)\n",
		player.Stats().CandidateUpdates, player.Stats().Frames)

	fmt.Println("\n--- phase 3: partition heals ---")
	inj.SetMode(faultnet.Healthy)
	if !waitUntil(10*time.Second, func() bool {
		return alpha.Stats().Resilience.Reconnects >= 1 && cloud.Stats().Supernodes == 2
	}) {
		return fmt.Errorf("fog-alpha never re-registered")
	}
	as := alpha.Stats()
	fmt.Printf("fog-alpha: saw the dead conn, redialed with backoff (attempts=%d), re-registered\n",
		as.Resilience.ReconnectAttempts)
	fmt.Printf("fog-alpha: replica resynced from welcome snapshot, tick %d\n", as.ReplicaTick)

	fmt.Printf("\n--- phase 4: kill %q (the serving supernode) ---\n", serving)
	migrationsBefore := player.Stats().Migrations
	fogs[serving].Close()
	if !waitUntil(10*time.Second, func() bool {
		return player.Stats().Migrations > migrationsBefore
	}) {
		return fmt.Errorf("player never migrated off the dead supernode")
	}
	ps := player.Stats()
	fmt.Printf("player 1 : video read deadline fired -> walked the ladder (migrations=%d, stall=%dms)\n",
		ps.Migrations, ps.StallMs)
	framesAt := ps.Frames
	if !waitUntil(5*time.Second, func() bool {
		return player.Stats().Frames > framesAt+10
	}) {
		return fmt.Errorf("video never resumed after migration")
	}
	now := servingFog(fogs)
	fmt.Printf("player 1 : streaming again from %q (frames=%d)\n", now, player.Stats().Frames)
	fmt.Printf("player 1 : reported the failure to the cloud's reputation book (qoe reports=%d)\n",
		player.Stats().QoEReports)
	fmt.Println("cloud    : ranked failover ladder after the incident (best first):")
	for i, c := range cloud.Candidates() {
		fmt.Printf("           #%d %s load=%d/%d score=%.2f\n",
			i+1, c.Addr, c.Load, c.Capacity, c.Score)
	}

	fmt.Println("\n--- phase 5: crash the cloud primary; warm standby takes over ---")
	sb, err := fognet.NewStandby(fognet.StandbyConfig{
		PrimaryAddr:  cloud.Addr(),
		PromoteAfter: 400 * time.Millisecond,
		Seed:         seed,
		Cloud: fognet.CloudConfig{
			TickInterval:      20 * time.Millisecond,
			HeartbeatInterval: 100 * time.Millisecond,
			HeartbeatMisses:   3,
		},
	})
	if err != nil {
		return err
	}
	defer sb.Close()
	if !waitUntil(5*time.Second, func() bool {
		return sb.Stats().Checkpoints >= 1
	}) {
		return fmt.Errorf("standby never received a checkpoint")
	}
	sbs := sb.Stats()
	fmt.Printf("standby  : following on %s — absorbed %d checkpoints, %d log entries (tick %d)\n",
		sb.Addr(), sbs.Checkpoints, sbs.LogEntries, sbs.LastTick)

	cloud.Close() // crash: no goodbye, no drain, mid-tick state is lost
	fmt.Println("cloud    : CRASHED")
	if !waitUntil(10*time.Second, func() bool { return sb.Promoted() != nil }) {
		return fmt.Errorf("standby never promoted")
	}
	promoted := sb.Promoted()
	prs := promoted.Stats()
	fmt.Printf("standby  : promoted after %v of silence — epoch %d, resuming from tick %d\n",
		400*time.Millisecond, prs.Epoch, prs.Tick)
	if !waitUntil(15*time.Second, func() bool {
		p := promoted.Stats()
		return p.Resilience.ResumedSupernodes >= 1 && p.Resilience.ResumedPlayers >= 1
	}) {
		return fmt.Errorf("sessions never resumed on the promoted standby")
	}
	prs = promoted.Stats()
	fmt.Printf("standby  : sessions resumed without rejoin (supernodes=%d players=%d)\n",
		prs.Resilience.ResumedSupernodes, prs.Resilience.ResumedPlayers)
	fmt.Printf("%-9s: resumes=%d discarded resyncs=%d, replica tick %d on epoch %d\n",
		now, fogs[now].Stats().Resilience.Resumes, fogs[now].Stats().Resilience.DiscardedResyncs,
		fogs[now].Stats().ReplicaTick, fogs[now].Stats().Epoch)
	ps = player.Stats()
	fmt.Printf("player 1 : control-plane resumes=%d, now on epoch %d\n", ps.CtrlResumes, ps.Epoch)

	fmt.Println("\n--- resilience counters ---")
	cs = promoted.Stats()
	fmt.Printf("cloud    : epoch=%d evictions=%d departures=%d heartbeats sent/acked=%d/%d queue drops=%d candidate updates=%d qoe reports=%d resumed sn/players=%d/%d\n",
		cs.Epoch, cs.Resilience.Evictions, cs.Resilience.Departures,
		cs.Resilience.HeartbeatsSent, cs.Resilience.HeartbeatAcks,
		cs.Resilience.SendQueueDrops, cs.Resilience.CandidateUpdates,
		cs.Resilience.QoEReports, cs.Resilience.ResumedSupernodes, cs.Resilience.ResumedPlayers)
	for _, name := range []string{"fog-alpha", "fog-beta"} {
		fs := fogs[name].Stats()
		fmt.Printf("%-9s: reconnects=%d (attempts=%d) heartbeat acks=%d replica tick=%d\n",
			name, fs.Resilience.Reconnects, fs.Resilience.ReconnectAttempts,
			fs.Resilience.HeartbeatAcks, fs.ReplicaTick)
	}
	fmt.Printf("player 1 : migrations=%d fallbacks=%d stall=%dms candidate updates=%d frames=%d\n",
		ps.Migrations, ps.FallbackTransitions, ps.StallMs, ps.CandidateUpdates, player.Stats().Frames)
	is := inj.Stats()
	fmt.Printf("injector : conns=%d writes=%d discarded=%d delayed=%dms (seed %d — rerun for the identical schedule)\n",
		is.Conns, is.Writes, is.DiscardedWrites, is.DelayedMs, seed)
	return nil
}

// servingFog names the fog currently streaming to the player, or "cloud
// fallback" if none is.
func servingFog(fogs map[string]*fognet.FogNode) string {
	for name, fog := range fogs {
		if fog.Stats().Attached > 0 {
			return name
		}
	}
	return "cloud fallback"
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return false
}
