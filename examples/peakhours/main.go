// Peak hours demo: dynamic supernode provisioning (§3.5) under user churn.
//
// Players arrive in Poisson bursts whose rate surges during the evening
// peak. A fixed supernode pool is overwhelmed — most newcomers fall back to
// streaming from the cloud — while the provisioning strategy forecasts the
// surge with its seasonal ARIMA model and pre-deploys supernodes ahead of
// it.
//
// Run with:
//
//	go run ./examples/peakhours
package main

import (
	"fmt"
	"log"

	"cloudfog/internal/core"
	"cloudfog/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base := core.PeerSim()
	base.Players = 2500
	base.SupernodeCandidates = 250
	base.Supernodes = 250
	base.Seed = 11
	base.Arrivals = &workload.ArrivalScript{
		OffPeakPerMinute: 2,  // quiet daytime trickle
		PeakPerMinute:    15, // evening surge (8 pm - midnight)
	}

	fmt.Println("Churn: 2 players/min off-peak, surging to 15/min at 8 pm")
	fmt.Println()

	type result struct {
		name string
		snap core.Snapshot
	}
	var results []result

	// Fixed pool: 25 supernodes, whatever the demand.
	fixed := base
	fixed.Strategies = core.Strategies{}
	fixed.FixedSupernodePool = 25
	sysFixed, err := core.NewSystem(fixed)
	if err != nil {
		return err
	}
	results = append(results, result{"fixed pool (25 supernodes)", sysFixed.Run(8, 4).Snapshot()})

	// Dynamic provisioning: forecast and pre-deploy every 4 hours.
	prov := base
	prov.Strategies = core.Strategies{Provisioning: true}
	sysProv, err := core.NewSystem(prov)
	if err != nil {
		return err
	}
	results = append(results, result{"dynamic provisioning", sysProv.Run(8, 4).Snapshot()})

	for _, res := range results {
		fmt.Printf("%-28s cloud egress %7.1f Mbps | latency %6.1f ms | continuity %.3f | avg fleet %5.1f supernodes\n",
			res.name,
			res.snap.MeanCloudEgressMbps,
			res.snap.MeanResponseLatencyMs,
			res.snap.MeanContinuity,
			res.snap.MeanActiveSupernodes,
		)
	}

	fmt.Println()
	fmt.Println("Provisioning rides the diurnal wave: it reserves supernodes before the")
	fmt.Println("peak and releases them after, so the surge never reaches the cloud.")
	return nil
}
