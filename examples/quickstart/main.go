// Quickstart: build a small CloudFog deployment, run one simulated week,
// and print the QoS a player population experiences — alongside the plain
// cloud-gaming baseline so the fog's effect is visible.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cloudfog/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Start from the paper's PeerSim profile, shrunk to laptop size.
	cfg := core.PeerSim()
	cfg.Players = 1000
	cfg.Supernodes = 60
	cfg.SupernodeCandidates = 100
	cfg.Seed = 42

	fmt.Println("CloudFog quickstart: 1,000 players, 60 supernodes, 5 datacenters")
	fmt.Println()

	for _, variant := range []struct {
		name       string
		mode       core.Mode
		strategies core.Strategies
	}{
		{"Cloud (baseline)", core.ModeCloud, core.Strategies{}},
		{"CloudFog/B (fog only)", core.ModeCloudFog, core.Strategies{}},
		{"CloudFog/A (all strategies)", core.ModeCloudFog, core.AllStrategies()},
	} {
		c := cfg
		c.Mode = variant.mode
		c.Strategies = variant.strategies
		sys, err := core.NewSystem(c)
		if err != nil {
			return fmt.Errorf("build %s: %w", variant.name, err)
		}
		// One simulated week: 7 cycles, 3 warm-up.
		snap := sys.Run(7, 3).Snapshot()
		fmt.Printf("%-28s response latency %6.1f ms | continuity %.3f | satisfied %4.1f%% | cloud egress %7.1f Mbps\n",
			variant.name,
			snap.MeanResponseLatencyMs,
			snap.MeanContinuity,
			100*snap.SatisfiedFraction,
			snap.MeanCloudEgressMbps,
		)
	}

	fmt.Println()
	fmt.Println("The fog cuts the cloud's bandwidth bill by an order of magnitude and")
	fmt.Println("shortens the response path; the QoS strategies add the rest.")
	return nil
}
