// Prototype demo: the full CloudFog architecture running as real networked
// processes-in-miniature on localhost — the cloud tier ticking the
// authoritative virtual world, two supernodes replicating it and streaming
// rendered, encoded video, and three thin clients playing.
//
// This is Fig. 1 of the paper, live: user input flows player -> cloud, the
// compact update stream (Λ) flows cloud -> supernode, and game video flows
// supernode -> player. Watch the traffic asymmetry at the end — the cloud
// spends a fraction of the bandwidth the fog delivers.
//
// Run with:
//
//	go run ./examples/prototype
package main

import (
	"fmt"
	"log"
	"time"

	"cloudfog/internal/fognet"
	"cloudfog/internal/game"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cloud, err := fognet.NewCloudServer(fognet.CloudConfig{
		TickInterval: 20 * time.Millisecond,
		NPCs:         6,
	})
	if err != nil {
		return err
	}
	defer cloud.Close()
	fmt.Printf("cloud    : authoritative world on %s\n", cloud.Addr())

	var fogs []*fognet.FogNode
	for i := 1; i <= 2; i++ {
		fog, err := fognet.NewFogNode(fognet.FogConfig{
			Name:          fmt.Sprintf("fog-%d", i),
			CloudAddr:     cloud.Addr(),
			Capacity:      2,
			FrameInterval: 33 * time.Millisecond, // 30 fps
		})
		if err != nil {
			return err
		}
		defer fog.Close()
		fogs = append(fogs, fog)
		fmt.Printf("supernode: %q streaming on %s (capacity 2)\n",
			fognameOf(i), fog.StreamAddr())
	}

	catalog := game.Catalog()
	var players []*fognet.PlayerClient
	for i := int32(1); i <= 3; i++ {
		p, err := fognet.NewPlayerClient(fognet.PlayerConfig{
			PlayerID:  i,
			CloudAddr: cloud.Addr(),
			Game:      catalog[int(i)%len(catalog)],
			Adapt:     true,
			Seed:      uint64(i),
		})
		if err != nil {
			return err
		}
		defer p.Close()
		players = append(players, p)
		fmt.Printf("player %d : joined, playing %q\n", i, catalog[int(i)%len(catalog)].Name)
	}

	fmt.Println("\nplaying for 3 seconds...")
	time.Sleep(3 * time.Second)

	fmt.Println()
	var videoBits int64
	for i, fog := range fogs {
		s := fog.Stats()
		videoBits += s.VideoBits
		fmt.Printf("supernode %d: replica tick %d, %d players, %d frames streamed, %d deltas applied\n",
			i+1, s.ReplicaTick, s.Attached, s.Frames, s.AppliedDeltas)
	}
	for i, p := range players {
		s := p.Stats()
		fmt.Printf("player %d  : %d frames decoded at L%d (%d rate switches, %d errors)\n",
			i+1, s.Frames, s.Level, s.RateSwitches, s.DecodeErrors)
	}
	cs := cloud.Stats()
	fmt.Printf("\ncloud egress (update stream Λ): %8.1f kbit\n", float64(cs.UpdateBits)/1000)
	fmt.Printf("fog egress (game video):        %8.1f kbit\n", float64(videoBits)/1000)
	if cs.UpdateBits > 0 {
		fmt.Printf("the fog delivered %.0fx the bandwidth the cloud spent — the CloudFog trade.\n",
			float64(videoBits)/float64(cs.UpdateBits))
	}
	return nil
}

func fognameOf(i int) string { return fmt.Sprintf("fog-%d", i) }
