// Package cloudfog's benchmark harness regenerates every table and figure
// of the paper's evaluation (§4). Each benchmark runs the corresponding
// experiment at quick scale and prints the figure's series — the same rows
// the paper plots — once per benchmark.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Paper-scale runs are available through the CLI:
//
//	go run ./cmd/cloudfogsim -exp all -scale full
package cloudfog

import (
	"fmt"
	"os"
	"testing"

	"cloudfog/internal/experiments"
)

var benchOpts = experiments.Options{Scale: experiments.ScaleQuick, Seed: 1}

// printed ensures each figure is rendered once per `go test -bench` process.
var printed = map[string]bool{}

func render(figs ...*experiments.Figure) {
	for _, fig := range figs {
		if fig == nil || printed[fig.ID] {
			continue
		}
		printed[fig.ID] = true
		fig.Render(os.Stdout)
		fmt.Println()
	}
}

func benchFigure(b *testing.B, f func(experiments.Options) (*experiments.Figure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		fig, err := f(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			render(fig)
		}
	}
}

// BenchmarkTable2QualityLadder regenerates Table 2 (the video quality
// ladder).
func BenchmarkTable2QualityLadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := experiments.Table2()
		if i == 0 {
			render(fig)
		}
	}
}

// BenchmarkFig4aCoverageDatacenters regenerates Fig. 4(a): user coverage vs
// number of datacenters (PeerSim).
func BenchmarkFig4aCoverageDatacenters(b *testing.B) { benchFigure(b, experiments.Fig4a) }

// BenchmarkFig4bCoverageSupernodes regenerates Fig. 4(b): user coverage vs
// number of supernodes (PeerSim).
func BenchmarkFig4bCoverageSupernodes(b *testing.B) { benchFigure(b, experiments.Fig4b) }

// BenchmarkFig5aCoverageDatacentersPL regenerates Fig. 5(a) on the
// PlanetLab profile.
func BenchmarkFig5aCoverageDatacentersPL(b *testing.B) { benchFigure(b, experiments.Fig5a) }

// BenchmarkFig5bCoverageSupernodesPL regenerates Fig. 5(b) on the PlanetLab
// profile.
func BenchmarkFig5bCoverageSupernodesPL(b *testing.B) { benchFigure(b, experiments.Fig5b) }

// BenchmarkFig6to8SystemComparison regenerates Figs. 6, 7, and 8 in one
// sweep: cloud bandwidth, response latency, and playback continuity vs
// concurrent players for Cloud, the CDN variants, CloudFog/B and
// CloudFog/A.
func BenchmarkFig6to8SystemComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bw, lat, cont, err := experiments.SystemComparison(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			render(bw, lat, cont)
		}
	}
}

// BenchmarkFig9aSetupLatency regenerates Fig. 9(a): setup and join
// latencies vs players.
func BenchmarkFig9aSetupLatency(b *testing.B) { benchFigure(b, experiments.Fig9a) }

// BenchmarkFig9bSetupLatencyPL regenerates Fig. 9(b): setup latencies vs
// supernodes on the PlanetLab profile.
func BenchmarkFig9bSetupLatencyPL(b *testing.B) { benchFigure(b, experiments.Fig9b) }

// BenchmarkFig10Reputation regenerates Fig. 10: satisfied players with and
// without reputation-based supernode selection.
func BenchmarkFig10Reputation(b *testing.B) { benchFigure(b, experiments.Fig10) }

// BenchmarkFig11Adaptation regenerates Fig. 11: satisfied players with and
// without receiver-driven encoding rate adaptation.
func BenchmarkFig11Adaptation(b *testing.B) { benchFigure(b, experiments.Fig11) }

// BenchmarkFig12SocialAssignment regenerates Fig. 12: the response-latency
// decomposition with and without social-network-based server assignment.
func BenchmarkFig12SocialAssignment(b *testing.B) { benchFigure(b, experiments.Fig12) }

// BenchmarkFig13to15Provisioning regenerates Figs. 13–15: cloud bandwidth,
// response latency, and continuity vs peak arrival rate with and without
// dynamic supernode provisioning.
func BenchmarkFig13to15Provisioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bw, lat, cont, err := experiments.ProvisioningComparison(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			render(bw, lat, cont)
		}
	}
}

// BenchmarkFig16aSupernodeEconomics regenerates Fig. 16(a): contributor
// rewards, costs, and profits.
func BenchmarkFig16aSupernodeEconomics(b *testing.B) { benchFigure(b, experiments.Fig16a) }

// BenchmarkFig16bProviderSavings regenerates Fig. 16(b): EC2 renting fees
// vs supernode rewards vs provider savings.
func BenchmarkFig16bProviderSavings(b *testing.B) { benchFigure(b, experiments.Fig16b) }

// --- Design-choice ablations (DESIGN.md §6) ------------------------------

// BenchmarkAblationGlobalVsLocalReputation compares per-player reputation
// against no reputation under load.
func BenchmarkAblationGlobalVsLocalReputation(b *testing.B) {
	benchFigure(b, experiments.AblationReputationScope)
}

// BenchmarkAblationAdaptationDebounce sweeps the consecutive-estimate
// debounce of the rate controller.
func BenchmarkAblationAdaptationDebounce(b *testing.B) {
	benchFigure(b, experiments.AblationAdaptationDebounce)
}

// BenchmarkAblationProvisioningSelection compares Eq. 16's rank-probability
// supernode selection against plain top-k.
func BenchmarkAblationProvisioningSelection(b *testing.B) {
	benchFigure(b, experiments.AblationProvisioningSelection)
}

// BenchmarkAblationAssignmentRefinement compares the greedy, swap-refined,
// and polished server-assignment pipelines.
func BenchmarkAblationAssignmentRefinement(b *testing.B) {
	benchFigure(b, experiments.AblationAssignmentRefinement)
}

// BenchmarkExtensionOptimalDeployment runs the Eq. 3 fleet-size
// optimization over the measured coverage curve (the paper's §5
// future-work question).
func BenchmarkExtensionOptimalDeployment(b *testing.B) {
	benchFigure(b, experiments.ExtensionOptimalDeployment)
}
