GO ?= go

.PHONY: all build vet test race check lint lint-vet bench bench-json bench-transport-json bench-tick-json bench-sim-json chaos

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static-analysis gate: the eight custom cloudfoglint analyzers (DESIGN.md
# §11 and §16) over the whole module with module-wide facts, checked
# against the committed shrink-only baseline and emitting lint.sarif for
# code-scanning UIs; plus gofmt. govulncheck runs when installed and is
# skipped otherwise (the container has no network to fetch it).
lint:
	$(GO) run ./cmd/cloudfoglint -sarif lint.sarif -baseline lint-baseline.json ./...
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; fi

# Same analyzers driven through the go command's vet-tool protocol, which
# caches per-package results in the build cache. The binary in bin/ is
# itself cached: it rebuilds only when the linter's sources change.
LINT_SRC := $(wildcard cmd/cloudfoglint/*.go internal/analysis/*.go internal/analysis/*/*.go) go.mod

bin/cloudfoglint: $(LINT_SRC)
	$(GO) build -o $@ ./cmd/cloudfoglint

lint-vet: bin/cloudfoglint
	$(GO) vet -vettool=$(CURDIR)/bin/cloudfoglint ./...

test:
	$(GO) test ./...

# The fognet chaos tests exercise heartbeats, eviction, reconnects, and
# player migration under injected faults; they must stay race-clean. The
# timeout is raised above go test's 10m default because the (singly-
# threaded) experiments figure suite runs several times slower under the
# race detector.
race:
	$(GO) test -race -timeout 60m ./...

check: build vet lint test race

# Micro-benchmarks for the shared §3.2 selection engine and its consumers
# (one iteration each: a smoke check, not a measurement run). The root
# package is excluded — its benchmarks are the figure-generation harness.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./internal/...

# Wire-path benchmark regression file: runs the hot-path benchmarks (the
# zero-allocation encoders/readers, the tick fan-out and frame-stream
# loops, and the §3.2 selection paths they feed) with -benchmem at a fixed
# iteration count, and converts the output to BENCH_wirepath.json via
# cmd/benchjson. The file is committed so reviewers can diff allocs/op
# across PRs, and CI uploads it as an artifact. Absolute ns/op varies by
# machine; allocs/op and B/op are the stable regression signal.
BENCH_WIREPATH = BenchmarkUpdateBatch|BenchmarkWriteMessage|BenchmarkAppendFrame|BenchmarkReadMessage|BenchmarkFrameReader|BenchmarkTickFanout|BenchmarkFrameStream|BenchmarkEncode|BenchmarkDecode|BenchmarkRender|BenchmarkSelectorSelect|BenchmarkCandidateLadder|BenchmarkRank|BenchmarkCheckpoint

bench-json:
	$(GO) test -bench='$(BENCH_WIREPATH)' -benchmem -benchtime=2000x -run='^$$' \
		./internal/protocol ./internal/fognet ./internal/videocodec \
		./internal/render ./internal/fog ./internal/selection \
		./internal/checkpoint \
		| $(GO) run ./cmd/benchjson -o BENCH_wirepath.json

# Datagram-transport benchmark regression file, same scheme as bench-json:
# the UDP video hot paths (header append/parse, tracker classification,
# per-frame datagram send and receive) at a fixed iteration count,
# converted to BENCH_transport.json. The acceptance bar is the one the TCP
# wire path set in PR 3: 0 allocs/op in steady state.
BENCH_TRANSPORT = BenchmarkDatagramHeader|BenchmarkTrackerTrack|BenchmarkDatagramSendFrame|BenchmarkDatagramRecvFrame

bench-transport-json:
	$(GO) test -bench='$(BENCH_TRANSPORT)' -benchmem -benchtime=2000x -run='^$$' \
		./internal/transport ./internal/fognet \
		| $(GO) run ./cmd/benchjson -o BENCH_transport.json

# Interest-management (AoI) tick fan-out regression file, same scheme as
# bench-json: the per-cell AoI fan-out and the legacy full-world baseline
# over the same fixtures, plus the grid RegionOf index, converted to
# BENCH_tick.json. Beyond ns/op and allocs/op, each fan-out row carries a
# custom fanoutB/tick metric — the tick's wire egress — which is the
# number the AoI layer exists to bound: flat in world size, linear in
# visible entities (DESIGN.md §14).
BENCH_TICK = BenchmarkAoITickFanout|BenchmarkLegacyTickFanout|BenchmarkRegionOf

bench-tick-json:
	$(GO) test -bench='$(BENCH_TICK)' -benchmem -benchtime=2000x -run='^$$' \
		./internal/fognet ./internal/virtualworld \
		| $(GO) run ./cmd/benchjson -o BENCH_tick.json

# Simulator scale regression file: full seeded deployments at 10k (the
# paper's PeerSim profile), 100k, and 1M players, sequential vs parallel,
# converted to BENCH_sim.json. Each row reports playerticks/s (player-
# subcycle evaluations per wall second) and heapMB/run (the streaming-
# metrics memory bar — RSS must stay O(1) in players, so the 1M row fits CI
# memory). The Par/Seq ratio at one scale is the worker-pool speedup; the
# ≥5× acceptance bar applies on a multi-core runner (on one core the pair
# measures phasing overhead instead). Override the filter to regenerate a
# subset, e.g. CI's 10k/100k-only run:
#   make bench-sim-json BENCH_SIM='BenchmarkSimPlayers10k|BenchmarkSimPlayers100k'
BENCH_SIM = BenchmarkSimPlayers

bench-sim-json:
	$(GO) test -bench='$(BENCH_SIM)' -benchmem -benchtime=1x -timeout 60m -run='^$$' \
		./internal/core \
		| $(GO) run ./cmd/benchjson -o BENCH_sim.json

chaos:
	$(GO) run ./examples/chaos
