GO ?= go

.PHONY: all build vet test race check chaos

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The fognet chaos tests exercise heartbeats, eviction, reconnects, and
# player migration under injected faults; they must stay race-clean.
race:
	$(GO) test -race ./...

check: build vet test race

chaos:
	$(GO) run ./examples/chaos
