GO ?= go

.PHONY: all build vet test race check bench chaos

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The fognet chaos tests exercise heartbeats, eviction, reconnects, and
# player migration under injected faults; they must stay race-clean. The
# timeout is raised above go test's 10m default because the (singly-
# threaded) experiments figure suite runs several times slower under the
# race detector.
race:
	$(GO) test -race -timeout 60m ./...

check: build vet test race

# Micro-benchmarks for the shared §3.2 selection engine and its consumers
# (one iteration each: a smoke check, not a measurement run). The root
# package is excluded — its benchmarks are the figure-generation harness.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./internal/...

chaos:
	$(GO) run ./examples/chaos
